"""Sparse matrices (CSR/CSC views) and synthetic generators.

SpMM multiplies a CSR matrix by a CSC matrix with inner products
(paper Sec. 7.2). The six SuiteSparse inputs of Table 4:

================== =============== ========= ============
Domain             Matrix          Size n    Avg. nnz/row
================== =============== ========= ============
File sharing       p2p-Gnutella31  62,586    2.4
Graph as matrix    amazon0312      400,727   8.0
Gel electrophor.   cage12          130,228   15.6
Electromagnetics   2cubes_sphere   101,492   16.2
Fluid dynamics     rma10           46,835    49.7
Structural         pwtk            217,918   52.9
================== =============== ========= ============

``TABLE4_MATRICES`` provides scaled synthetic stand-ins preserving the
average non-zeros per row — the statistic the paper's analysis keys on
(sparser rows cause faster merge-intersections and more frequent
reconfigurations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SparseMatrix:
    """A square sparse matrix holding both CSR and CSC views.

    The CSR view (``row_ptr``/``row_idx``/``row_val``) plays the role of
    matrix A; the CSC view (``col_ptr``/``col_idx``/``col_val``) plays
    the role of matrix B. Column indices within a row (and row indices
    within a column) are sorted, as merge-intersection requires.
    """

    n: int
    row_ptr: np.ndarray
    row_idx: np.ndarray
    row_val: np.ndarray
    col_ptr: np.ndarray
    col_idx: np.ndarray
    col_val: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.row_idx)

    @property
    def avg_nnz_per_row(self) -> float:
        return self.nnz / max(1, self.n)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.row_ptr[i], self.row_ptr[i + 1]
        return self.row_idx[lo:hi], self.row_val[lo:hi]

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.col_ptr[j], self.col_ptr[j + 1]
        return self.col_idx[lo:hi], self.col_val[lo:hi]

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n, self.n))
        for i in range(self.n):
            idx, val = self.row(i)
            dense[i, idx] = val
        return dense


def _from_coo(n: int, rows: np.ndarray, cols: np.ndarray,
              vals: np.ndarray) -> SparseMatrix:
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    if len(rows):  # drop duplicate coordinates (keep first)
        dup = np.zeros(len(rows), dtype=bool)
        dup[1:] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
        rows, cols, vals = rows[~dup], cols[~dup], vals[~dup]

    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row_ptr[1:], rows, 1)
    np.cumsum(row_ptr, out=row_ptr)

    corder = np.lexsort((rows, cols))
    crows, ccols, cvals = rows[corder], cols[corder], vals[corder]
    col_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(col_ptr[1:], ccols, 1)
    np.cumsum(col_ptr, out=col_ptr)

    return SparseMatrix(
        n=n,
        row_ptr=row_ptr, row_idx=cols.astype(np.int64),
        row_val=vals.astype(np.float64),
        col_ptr=col_ptr, col_idx=crows.astype(np.int64),
        col_val=cvals.astype(np.float64),
    )


def random_sparse_matrix(n: int, avg_nnz_per_row: float,
                         seed: int = 0) -> SparseMatrix:
    """Uniform-random sparsity pattern with the requested density."""
    rng = np.random.default_rng(seed)
    nnz = int(n * avg_nnz_per_row)
    rows = rng.integers(0, n, size=nnz, dtype=np.int64)
    cols = rng.integers(0, n, size=nnz, dtype=np.int64)
    vals = rng.uniform(0.5, 1.5, size=nnz)
    return _from_coo(n, rows, cols, vals)


# Scaled synthetic stand-ins for Table 4, keyed by the paper's codes.
TABLE4_MATRICES = {
    "FS": dict(n=700, avg_nnz_per_row=2.4,
               paper="p2p-Gnutella31: n=62,586, nnz/row 2.4"),
    "Gr": dict(n=900, avg_nnz_per_row=8.0,
               paper="amazon0312: n=400,727, nnz/row 8.0"),
    "GE": dict(n=500, avg_nnz_per_row=15.6,
               paper="cage12: n=130,228, nnz/row 15.6"),
    "EM": dict(n=450, avg_nnz_per_row=16.2,
               paper="2cubes_sphere: n=101,492, nnz/row 16.2"),
    "FD": dict(n=300, avg_nnz_per_row=49.7,
               paper="rma10: n=46,835, nnz/row 49.7"),
    "St": dict(n=350, avg_nnz_per_row=52.9,
               paper="pwtk: n=217,918, nnz/row 52.9"),
}


def make_matrix(code: str, scale: float = 1.0, seed: int = 1) -> SparseMatrix:
    """Instantiate a Table 4 stand-in; ``scale`` multiplies the size."""
    spec = TABLE4_MATRICES[code]
    return random_sparse_matrix(int(spec["n"] * scale),
                                spec["avg_nnz_per_row"], seed=seed)
