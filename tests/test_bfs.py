"""BFS functional and architectural tests across systems and variants."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.datasets.graphs import power_law_graph, uniform_random_graph, grid_graph
from repro.workloads import bfs


def _run(graph, mode, variant="decoupled", source=0, **config_kwargs):
    config = SystemConfig(n_pes=config_kwargs.pop("n_pes", 16),
                          **config_kwargs)
    program, workload = bfs.build(graph, config, mode, variant, source=source)
    result = System(config, program, mode=mode).run(max_cycles=50_000_000)
    return result, workload


@pytest.fixture(scope="module")
def small_graph():
    return power_law_graph(400, 6.0, seed=3)


def test_fifer_bfs_matches_reference(small_graph):
    result, _ = _run(small_graph, "fifer")
    golden = bfs.bfs_reference(small_graph, 0)
    np.testing.assert_array_equal(result.result, golden)


def test_static_bfs_matches_reference(small_graph):
    result, _ = _run(small_graph, "static")
    golden = bfs.bfs_reference(small_graph, 0)
    np.testing.assert_array_equal(result.result, golden)


def test_merged_variants_match_reference(small_graph):
    golden = bfs.bfs_reference(small_graph, 0)
    for mode in ("fifer", "static"):
        result, _ = _run(small_graph, mode, variant="merged")
        np.testing.assert_array_equal(result.result, golden)


def test_fifer_faster_than_static(small_graph):
    fifer, _ = _run(small_graph, "fifer")
    static, _ = _run(small_graph, "static")
    assert fifer.cycles < static.cycles


def test_bfs_on_grid_long_diameter():
    graph = grid_graph(20, 20)
    result, _ = _run(graph, "fifer")
    golden = bfs.bfs_reference(graph, 0)
    np.testing.assert_array_equal(result.result, golden)
    # Corner-to-corner distance on a 20x20 grid is 38 levels.
    assert result.result.max() == 38


def test_bfs_nonzero_source():
    graph = uniform_random_graph(300, 4.0, seed=9)
    result, _ = _run(graph, "fifer", source=137)
    golden = bfs.bfs_reference(graph, 137)
    np.testing.assert_array_equal(result.result, golden)


def test_fifer_reports_residence_and_reconfig(small_graph):
    result, _ = _run(small_graph, "fifer")
    assert result.avg_reconfig_cycles > 0
    assert result.avg_residence_cycles > result.avg_reconfig_cycles
    # The static pipeline never reconfigures after initial setup.
    static, _ = _run(small_graph, "static")
    assert static.counters["reconfig"] == 0
