"""Geometry of the reconfigurable fabric inside one PE.

The fabric is a grid of word-width functional units separated by rows of
switches (paper Fig. 3). Inputs and outputs enter through ports at the
edges; the fabric is internally pipelined, so the longest input-output
path sets a configuration's latency. A few double-precision FMA units
are distributed evenly across the grid (paper Sec. 3/6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FabricConfig


@dataclass(frozen=True)
class FabricSpec:
    """Concrete fabric geometry derived from a :class:`FabricConfig`."""

    cols: int
    rows: int
    fma_units: int
    config_bytes: int

    @classmethod
    def from_config(cls, config: FabricConfig) -> "FabricSpec":
        return cls(cols=config.cols, rows=config.rows,
                   fma_units=config.fma_units,
                   config_bytes=config.config_bytes)

    @property
    def n_functional_units(self) -> int:
        return self.cols * self.rows

    def fma_positions(self) -> list[tuple[int, int]]:
        """Grid coordinates of the FMA-capable units, spread evenly."""
        if self.fma_units == 0:
            return []
        positions = []
        stride = self.n_functional_units / self.fma_units
        for i in range(self.fma_units):
            flat = int(i * stride + stride / 2)
            positions.append((flat // self.cols, flat % self.cols))
        return positions

    def pipeline_depth(self, n_levels: int) -> int:
        """Cycles from fabric input to output for an ``n_levels`` DFG.

        Functional units are separated by switch registers (paper
        Fig. 3), so each dataflow level costs one FU register plus one
        switch register, and one final switch row leads to the output
        ports. This is the drain time of the configuration's in-flight
        operations during reconfiguration (paper Sec. 5.1).
        """
        return 2 * n_levels + 1
