"""System configuration for the Fifer reproduction.

The defaults reproduce Table 2 of the paper ("Configuration parameters of
the evaluated system"):

* 16 PEs at 2 GHz, each a 16x5 functional-unit mesh with a 32 KB L1
  (8-way, 4-cycle latency).
* Up to 16 queues per PE, virtualized on a 16 KB buffer.
* 1 or 4 Skylake-like out-of-order cores (6-wide issue, 32 KB L1,
  256 KB L2).
* Shared LLC: 2 MB/core or 512 KB/PE, 16-way, 40-cycle latency.
* Main memory: 120-cycle latency, 256 GB/s high-bandwidth memory.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = 64

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class FabricConfig:
    """The CGRA fabric inside each PE (paper Sec. 3 and Sec. 6).

    The fabric is a 16x5 grid of word-width functional units surrounded
    by switches, with 4 double-precision FMA units distributed evenly.
    The whole-fabric configuration is about 360 bytes, loaded from the
    L1 in 64-byte chunks (6 groups, Sec. 5.1).
    """

    cols: int = 16
    rows: int = 5
    fma_units: int = 4
    word_bytes: int = 8
    config_bytes: int = 360
    activation_cycles: int = 2

    @property
    def n_functional_units(self) -> int:
        return self.cols * self.rows

    @property
    def config_chunks(self) -> int:
        """Number of 64-byte chunks in one configuration bitstream."""
        return -(-self.config_bytes // 64)


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory (HBM) latency and bandwidth (paper Table 2)."""

    latency: int = 120
    # 256 GB/s at 2 GHz = 128 bytes per cycle.
    bandwidth_bytes_per_cycle: float = 128.0


@dataclass(frozen=True)
class OOOConfig:
    """Skylake-like out-of-order core model parameters (paper Sec. 7.1).

    The paper's cores are 6-wide OOO with 32 KB L1 and 256 KB L2. Our
    analytic model additionally needs an effective IPC for irregular
    integer code and a memory-level-parallelism factor bounding how many
    independent misses the backend overlaps.
    """

    # Measured IPC of tuned graph/sparse codes on Skylake-class cores is
    # well below the 6-wide issue width (branchy, dependence-limited).
    issue_width: int = 6
    effective_ipc: float = 1.8
    mlp_independent: float = 4.5
    mlp_dependent: float = 1.0
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KB, 8, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * KB, 8, 12))
    llc_per_core_bytes: int = 2 * MB
    barrier_cycles: int = 200


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration for the CGRA-based systems.

    ``queue_mem_bytes`` is the per-PE virtualized queue buffer; Fig. 16
    sweeps it from 1/4x to 4x of the default 16 KB. Silo uses 4 KB
    (paper Sec. 7.2). ``double_buffered`` selects Fifer's double-buffered
    configuration cells (Sec. 5.1); disabling it serializes configuration
    draining and loading (the "without double-buffering" line of Fig. 16).
    ``zero_cost_reconfig`` models the idealized design discussed at the
    end of Sec. 8.3.
    """

    n_pes: int = 16
    fabric: FabricConfig = field(default_factory=FabricConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KB, 8, 4))
    llc_per_pe_bytes: int = 512 * KB
    llc_ways: int = 16
    llc_latency: int = 40
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    queue_mem_bytes: int = 16 * KB
    max_queues_per_pe: int = 16
    n_drms: int = 4
    drm_max_outstanding: int = 8
    # Accesses a DRM can issue per cycle to its (banked) L1; keeps
    # SIMD-replicated datapaths fed (see DESIGN.md, known divergences).
    drm_issue_width: int = 4
    double_buffered: bool = True
    zero_cost_reconfig: bool = False
    scheduler_policy: str = "most-work"
    # Cap on SIMD datapath replication (paper Sec. 5.6); None lets each
    # stage replicate until it fills the fabric's columns. 1 disables
    # SIMD entirely (the ablation in bench_simd_ablation).
    max_simd_replication: "int | None" = None
    quantum: int = 64
    deadlock_quanta: int = 2_000
    # What-if speed factors for stage/DRM datapaths: ((name, factor),
    # ...) where ``name`` is a base component name ("bfs.fetch" matches
    # every "bfs.fetch@shard" replica) or an exact per-shard name, and
    # ``factor`` > 0 divides the component's cycle costs (queue I/O and
    # compute for stages, issue throughput for DRMs). Used by the causal
    # what-if validator (repro.profiling.whatif); the default () leaves
    # every cost expression untouched, bit for bit.
    stage_speedup: tuple = ()

    def __post_init__(self):
        if self.n_pes <= 0:
            raise ValueError(f"n_pes must be positive, got {self.n_pes}")
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")
        if self.queue_mem_bytes < 64:
            raise ValueError(
                f"queue memory of {self.queue_mem_bytes} bytes is too small")
        if self.n_drms < 0:
            raise ValueError(f"n_drms must be >= 0, got {self.n_drms}")
        if self.drm_issue_width <= 0:
            raise ValueError(
                f"drm_issue_width must be positive, got {self.drm_issue_width}")
        if self.drm_max_outstanding <= 0:
            raise ValueError(
                f"drm_max_outstanding must be positive, got "
                f"{self.drm_max_outstanding}")
        if self.max_queues_per_pe <= 0:
            raise ValueError(
                f"max_queues_per_pe must be positive, got "
                f"{self.max_queues_per_pe}")
        if self.deadlock_quanta <= 0:
            raise ValueError(
                f"deadlock_quanta must be positive, got "
                f"{self.deadlock_quanta}")
        if (self.max_simd_replication is not None
                and self.max_simd_replication < 1):
            raise ValueError("max_simd_replication must be >= 1 or None")
        for entry in self.stage_speedup:
            if (not isinstance(entry, tuple) or len(entry) != 2
                    or not isinstance(entry[0], str) or entry[1] <= 0):
                raise ValueError(
                    f"stage_speedup entries must be (stage_name, factor>0) "
                    f"tuples, got {entry!r}")

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    @property
    def llc(self) -> CacheConfig:
        return CacheConfig(self.llc_per_pe_bytes * self.n_pes,
                           self.llc_ways, self.llc_latency)


DEFAULT_CONFIG = SystemConfig()
