"""Unit tests for the decoupling front-end (paper Sec. 4).

Covers the three front-end layers in isolation: the kernel-description
DSL (:mod:`repro.frontend.kernel`), the split analysis with its
liveness-derived calling convention (:mod:`repro.frontend.split`), and
the pipeline linter (:mod:`repro.frontend.lint`). End-to-end parity of
the *lowered* pipelines against the hand-written ones is asserted in
``test_frontend_parity.py``.
"""

import numpy as np
import pytest

from repro.frontend import (FRONTEND_KERNELS, FrontendError, GraphKernel,
                            PipelineLintError, analyze, compile_kernel,
                            get_frontend)
from repro.frontend.kernels import bfs_kernel, cc_kernel, sssp_kernel
from repro.frontend.lint import (check_feed_forward, compute_edgy,
                                 compute_levels)
from repro.frontend.lower import _demo_graph
from repro.frontend.split import QueueEdge


def _zeros(graph, params):
    return np.zeros(graph.n_vertices, dtype=np.int64)


def _edge_ones(graph, params):
    return np.ones(max(1, graph.n_edges), dtype=np.int64)


def _toy_kernel(name="toy"):
    """A legal BFS-shaped kernel used as the mutation base below."""
    k = GraphKernel(name)
    dist = k.state("dist", init=_zeros, output=True)
    v = k.vertex()
    start = k.load(k.offsets, v)
    end = k.load(k.offsets, v + 1)
    with k.edges(start, end) as e:
        ngh = k.load(k.neighbors, e)
        dv = k.load(dist, ngh, owner=True)
        with k.when(dv < 0):
            k.store(dist, ngh, k.epoch())
            k.push(ngh)
    return k


# -- kernel DSL ------------------------------------------------------------

class TestKernelDSL:
    def test_toy_kernel_analyzes(self):
        plan = analyze(_toy_kernel())
        assert plan.vertex_fetch_words == 0
        assert plan.edge_fetch_words == 1
        assert plan.uses_epoch

    def test_value_bool_raises(self):
        k = GraphKernel("k")
        v = k.vertex()
        with pytest.raises(FrontendError, match=r"when"):
            if v < 1:
                pass

    def test_values_are_not_hashable(self):
        k = GraphKernel("k")
        with pytest.raises(TypeError):
            {k.vertex(): 1}

    def test_eq_builds_expression(self):
        k = GraphKernel("k")
        expr = k.vertex() == 3
        assert expr.op == "eq"

    def test_reverse_operand_sugar(self):
        k = GraphKernel("k")
        v = k.vertex()
        assert (1 + v).op == "add"
        assert (10 - v).op == "sub"
        assert (v > 2).op == "lt"          # swapped lt
        assert (v > 2).args[0].attr == 2

    def test_cross_kernel_values_rejected(self):
        a, b = GraphKernel("a"), GraphKernel("b")
        with pytest.raises(FrontendError, match="belongs to kernel"):
            a.vertex() + b.vertex()

    def test_non_number_mixing_rejected(self):
        k = GraphKernel("k")
        with pytest.raises(FrontendError, match="cannot mix"):
            k.vertex() + "three"

    def test_state_requires_init(self):
        k = GraphKernel("k")
        with pytest.raises(FrontendError, match="init"):
            k.state("x")

    def test_duplicate_state_rejected(self):
        k = GraphKernel("k")
        k.state("x", init=_zeros)
        with pytest.raises(FrontendError, match="declared twice"):
            k.state("x", init=_zeros)

    def test_builtin_shadowing_rejected(self):
        k = GraphKernel("k")
        with pytest.raises(FrontendError, match="built-in"):
            k.state("offsets", init=_zeros)

    def test_unknown_state_size_rejected(self):
        k = GraphKernel("k")
        with pytest.raises(FrontendError, match="unknown size"):
            k.state("x", size="bytes", init=_zeros)

    def test_start_from_validates(self):
        k = GraphKernel("k")
        with pytest.raises(FrontendError, match="no such param"):
            k.start_from("source", "missing")
        with pytest.raises(FrontendError, match="fringe kind"):
            k.start_from("everything")

    def test_owner_load_requires_mutable_ref(self):
        k = GraphKernel("k")
        weights = k.state("w", size="edges", mutable=False, init=_edge_ones)
        with pytest.raises(FrontendError, match="mutable"):
            k.load(weights, k.vertex(), owner=True)

    def test_only_one_edge_loop(self):
        k = _toy_kernel()
        with pytest.raises(FrontendError, match="one edge loop"):
            with k.edges(k.const(0), k.const(1)):
                pass

    def test_push_requires_value(self):
        k = GraphKernel("k")
        with pytest.raises(FrontendError, match="push"):
            k.push(3)

    def test_load_requires_ref(self):
        k = GraphKernel("k")
        with pytest.raises(FrontendError, match="not a declared ref"):
            k.load("dist", k.vertex())

    def test_get_ref(self):
        k = _toy_kernel()
        assert k.get_ref("offsets") is k.offsets
        assert k.get_ref("dist").name == "dist"
        with pytest.raises(KeyError):
            k.get_ref("nope")


# -- level / edge-dependence analysis --------------------------------------

class TestAnalysis:
    def test_levels_match_skeleton_cuts(self):
        k = _toy_kernel()
        level = compute_levels(k)
        plan = analyze(k)
        assert level[plan.bounds[0].vid] == 1
        assert level[plan.route_load.vid] == 2
        assert level[plan.owner_load.vid] == 3
        assert level[k._vertex.vid] == 0

    def test_edgy_reachability(self):
        k = _toy_kernel()
        edgy = compute_edgy(k)
        plan = analyze(k)
        assert edgy[k._edge_var.vid]
        assert edgy[plan.route_load.vid]
        assert not edgy[k._vertex.vid]
        assert not edgy[plan.bounds[0].vid]

    def test_bfs_plan_shape(self):
        plan = analyze(bfs_kernel())
        assert plan.p0 is None
        assert plan.s2_value is None
        assert plan.uses_epoch
        assert not plan.needs_dedup
        assert plan.owner_load.attr.ref.name == "distances"

    def test_cc_plan_shape(self):
        plan = analyze(cc_kernel())
        assert plan.p0 is not None
        assert plan.s2_value is None
        assert plan.s3_payload is plan.p0
        assert plan.needs_dedup
        assert plan.vertex_fetch_words == 1

    def test_sssp_plan_shape(self):
        plan = analyze(sssp_kernel())
        assert plan.p0 is not None
        assert plan.s2_value is not None
        assert plan.s3_payload is plan.s2_value
        assert plan.edge_fetch_words == 2
        assert plan.owner_load.attr.ref.name == "dist"


# -- split/lint rejections -------------------------------------------------

class TestRejections:
    def test_illegal_back_edge_named(self):
        """A store to an array an earlier stage reads must be rejected,
        naming both the store and the conflicting load (required by the
        acceptance criteria)."""
        k = GraphKernel("backedge")
        vals = k.state("vals", init=_zeros)
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        x = k.load(vals, v)
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < x):
                k.store(vals, ngh, x)
                k.push(ngh)
        with pytest.raises(PipelineLintError,
                           match=r"illegal back-edge") as exc:
            analyze(k)
        message = str(exc.value)
        assert "store#0(vals)" in message
        assert "load(vals)" in message
        assert "S0/S1" in message

    def test_edge_escape_named(self):
        """A value defined inside the edge loop used outside it is not
        live across its cut (required by the acceptance criteria)."""
        k = GraphKernel("escape")
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.store(dist, ngh, 0)
                k.push(ngh)
        k.store(dist, v, ngh)  # edge-loop value escaping the loop
        with pytest.raises(PipelineLintError,
                           match="not live across its cut") as exc:
            analyze(k)
        assert "load(neighbors)" in str(exc.value)

    def test_s3_liveness_rejects_unrouted_value(self):
        """An update-stage expression may only use what crosses the
        cross-shard hop (routed neighbor id + one payload word)."""
        k = GraphKernel("hop")
        vals = k.state("vals", init=_zeros)
        weights = k.state("w", size="edges", mutable=False, init=_edge_ones)
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        label = k.load(vals, v)
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            w = k.load(weights, e)
            cand = label + w            # the hop payload
            dv = k.load(dist, ngh, owner=True)
            with k.when(cand < dv):
                k.store(dist, ngh, label)   # label itself did not cross
                k.push(ngh)
        with pytest.raises(PipelineLintError,
                           match="not live across the cross-shard hop"):
            analyze(k)

    def test_no_loads_rejected(self):
        k = GraphKernel("empty")
        dist = k.state("dist", init=_zeros)
        k.store(dist, k.vertex(), 0)
        with pytest.raises(FrontendError, match="no long-latency loads"):
            analyze(k)

    def test_no_edge_loop_rejected(self):
        k = GraphKernel("noloop")
        dist = k.state("dist", init=_zeros)
        k.load(dist, k.vertex())
        with pytest.raises(FrontendError, match="no edges"):
            analyze(k)

    def test_no_owner_load_rejected(self):
        k = GraphKernel("noowner")
        dist = k.state("dist", init=_zeros)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            k.store(dist, ngh, 0)
        with pytest.raises(FrontendError, match="no owner load"):
            analyze(k)

    def test_two_owner_loads_rejected(self):
        k = GraphKernel("twoowner")
        dist = k.state("dist", init=_zeros)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            k.load(dist, ngh, owner=True)
            k.load(dist, ngh, owner=True)
            k.store(dist, ngh, 0)
        with pytest.raises(FrontendError, match="one owner-routed load"):
            analyze(k)

    def test_bad_edge_bounds_rejected(self):
        k = GraphKernel("bounds")
        dist = k.state("dist", init=_zeros)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 2)     # not offsets[v + 1]
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.store(dist, ngh, 0)
        with pytest.raises(FrontendError, match=r"offsets\[vertex\(\) \+ 1\]"):
            analyze(k)

    def test_vertex_fetch_inside_loop_rejected(self):
        k = GraphKernel("hoist")
        vals = k.state("vals", init=_zeros)
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            x = k.load(vals, v)            # vertex fetch issued per edge
            dv = k.load(dist, ngh, owner=True)
            with k.when(x < dv):
                k.store(dist, ngh, x)
                k.push(ngh)
        with pytest.raises(FrontendError, match="hoist it out"):
            analyze(k)

    def test_indirect_edge_extra_rejected(self):
        k = GraphKernel("indirect")
        weights = k.state("w", size="edges", mutable=False, init=_edge_ones)
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            w = k.load(weights, e + 0)     # not indexed directly by e
            dv = k.load(dist, ngh, owner=True)
            with k.when(w < dv):
                k.store(dist, ngh, w)
                k.push(ngh)
        with pytest.raises(FrontendError, match="indexed directly"):
            analyze(k)

    def test_too_deep_load_rejected(self):
        k = GraphKernel("deep")
        vals = k.state("vals", init=_zeros)
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            x = k.load(vals, dv)           # depth 4: indexed by fetched value
            with k.when(x < 0):
                k.store(dist, ngh, 0)
        with pytest.raises(FrontendError, match="cut depth 4"):
            analyze(k)

    def test_two_payload_candidates_rejected(self):
        k = GraphKernel("twopay")
        va = k.state("va", init=_zeros)
        vb = k.state("vb", init=_zeros)
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        a = k.load(va, v)
        b = k.load(vb, v)
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(b < dv):
                k.store(dist, ngh, a)
                k.push(ngh)
        with pytest.raises(FrontendError, match="fold them into a single"):
            analyze(k)

    def test_nested_when_rejected(self):
        k = GraphKernel("nested")
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                with k.when(dv < -1):
                    k.store(dist, ngh, 0)
        with pytest.raises(FrontendError, match="nested when"):
            analyze(k)

    def test_mixed_predication_rejected(self):
        k = GraphKernel("mixed")
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.store(dist, ngh, 0)
            k.push(ngh)                    # unpredicated
        with pytest.raises(FrontendError, match="predicated differently"):
            analyze(k)

    def test_vertex_context_side_effect_rejected(self):
        k = GraphKernel("vctx")
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        k.store(dist, v, 7)                # outside the edge loop
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.store(dist, ngh, 0)
        with pytest.raises(FrontendError, match="vertex-context"):
            analyze(k)

    def test_store_without_route_index_rejected(self):
        k = GraphKernel("badidx")
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.store(dist, v, 0)        # not the routed neighbor
        with pytest.raises(FrontendError, match="owner-routed vertex"):
            analyze(k)

    def test_push_of_non_route_rejected(self):
        k = GraphKernel("badpush")
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.store(dist, ngh, 0)
                k.push(v)                  # not the routed neighbor
        with pytest.raises(FrontendError, match="routed neighbor id"):
            analyze(k)

    def test_update_without_store_rejected(self):
        k = GraphKernel("nostore")
        dist = k.state("dist", init=_zeros, output=True)
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.push(ngh)
        with pytest.raises(FrontendError, match="at least one store"):
            analyze(k)


# -- feed-forward proof ----------------------------------------------------

class TestFeedForward:
    def test_generated_queue_graphs_pass(self):
        for factory in FRONTEND_KERNELS.values():
            plan = analyze(factory())
            check_feed_forward(plan.kernel.name, plan.queue_graph())

    def test_backwards_data_edge_rejected(self):
        bad = QueueEdge("loop", "S2:fetch", "S1:enum", 2, 1, 1)
        with pytest.raises(PipelineLintError, match="flows backwards"):
            check_feed_forward("k", [bad])

    def test_stray_control_edge_rejected(self):
        bad = QueueEdge("loop", "S3:update", "S0:fringe", 3, 0, 1,
                        control=True)
        with pytest.raises(PipelineLintError, match="control core"):
            check_feed_forward("k", [bad])


# -- compiled-pipeline handle ----------------------------------------------

class TestCompiledPipeline:
    def test_describe_structure(self):
        for name in FRONTEND_KERNELS:
            desc = get_frontend(name).describe()
            assert desc["kernel"] == name
            assert desc["feed_forward"] is True
            assert len(desc["stages"]) == 4
            assert len(desc["queues"]) == 10
            for stage in desc["stages"]:
                assert stage["compute_ops"] > 0
                assert stage["asm"].strip()
            widths = {q["queue"]: q["words"] for q in desc["queues"]}
            split = desc["split"]
            assert widths["off_out"] == 3 + split["vertex_fetch_words"]
            assert widths["ngh_out"] == 1 + split["edge_fetch_words"]

    def test_describe_split_invariants(self):
        bfs = get_frontend("bfs").describe()["split"]
        assert (bfs["vertex_fetch_words"], bfs["edge_fetch_words"]) == (0, 1)
        assert bfs["owner_array"] == "distances"
        assert bfs["payload_across_hop"] is None
        cc = get_frontend("cc").describe()["split"]
        assert (cc["vertex_fetch_words"], cc["edge_fetch_words"]) == (1, 1)
        assert cc["dedup_pushes"]
        sssp = get_frontend("sssp").describe()["split"]
        assert (sssp["vertex_fetch_words"],
                sssp["edge_fetch_words"]) == (1, 2)
        assert sssp["owner_array"] == "dist"
        assert sssp["payload_across_hop"] is not None

    def test_get_frontend_caches_and_rejects_unknown(self):
        assert get_frontend("bfs") is get_frontend("bfs")
        with pytest.raises(KeyError):
            get_frontend("apsp")

    def test_unknown_param_rejected(self):
        with pytest.raises(FrontendError, match="no parameter"):
            get_frontend("bfs").workload(_demo_graph(), 1, fanout=3)

    def test_bad_init_shape_rejected(self):
        k = GraphKernel("badshape")
        k.state("dist",
                init=lambda g, p: np.zeros(g.n_vertices + 5, dtype=np.int64),
                output=True)
        dist = k.refs[0]
        v = k.vertex()
        start = k.load(k.offsets, v)
        end = k.load(k.offsets, v + 1)
        with k.edges(start, end) as e:
            ngh = k.load(k.neighbors, e)
            dv = k.load(dist, ngh, owner=True)
            with k.when(dv < 0):
                k.store(dist, ngh, 0)
                k.push(ngh)
        pipeline = compile_kernel(k)
        with pytest.raises(FrontendError, match="shape"):
            pipeline.workload(_demo_graph(), 1)
