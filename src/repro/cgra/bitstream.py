"""Configuration bitstream generation and parsing.

A configuration is a fixed-size byte string covering the whole fabric
(paper Sec. 5.1: "our 16x5 fabric requires about 360 bytes of
configuration ... divided in 6 groups"). Fifer stores these in cacheable
memory and streams them from the L1 at 64 bytes/cycle, so the bitstream
length directly determines the configuration load latency.

Layout (little-endian):

* 16-byte header: magic ``FIFR``, replication, lane width, level count,
  opcode-table length, 32-bit stage-name hash, 4 reserved bytes.
* One 4-byte cell record per functional unit, row-major:
  opcode byte (0 = unused) and up to three operand references, each the
  packed ``(row << 4) | col`` of the producing cell or ``0xFF`` for
  none/edge.
* Zero padding up to ``config_bytes - 4``, then a 32-bit checksum.

Application constants are *not* part of the bitstream: they are register
state loaded alongside it (paper Sec. 5.1).
"""

from __future__ import annotations

import struct
import zlib

from repro.cgra.fabric import FabricSpec
from repro.cgra.mapper import Mapping
from repro.ir.dfg import DataflowGraph
from repro.ir.ops import OpKind

MAGIC = b"FIFR"
_NO_OPERAND = 0xFF

# Stable opcode numbering for serialization (0 reserved for "unused").
_OPCODES = {kind: i + 1 for i, kind in enumerate(OpKind)}
_KINDS = {v: k for k, v in _OPCODES.items()}


class BitstreamError(Exception):
    """Malformed or corrupt bitstream."""


def _pack_ref(row: int, col: int) -> int:
    return (row << 4) | col


def _unpack_ref(ref: int) -> tuple[int, int]:
    return ref >> 4, ref & 0xF


def generate_bitstream(dfg: DataflowGraph, mapping: Mapping) -> bytes:
    """Serialize one stage configuration to its fabric bitstream."""
    fabric = mapping.fabric
    cells = bytearray(4 * fabric.n_functional_units)
    for node in dfg.nodes:
        coords = mapping.placement.get(node.node_id)
        if coords is None:  # edge ops (DEQ/ENQ) live in the edge switches
            continue
        row, col = coords
        offset = 4 * (row * fabric.cols + col)
        cells[offset] = _OPCODES[node.kind]
        refs = [_NO_OPERAND] * 3
        for i, operand in enumerate(node.operands[:3]):
            op_coords = mapping.placement.get(operand.node_id)
            if op_coords is not None:
                refs[i] = _pack_ref(*op_coords)
        cells[offset + 1:offset + 4] = bytes(refs)

    header = struct.pack(
        "<4sBBBBI4x", MAGIC, mapping.replication, mapping.lane_width,
        mapping.n_levels, 0, zlib.crc32(dfg.name.encode()) & 0xFFFFFFFF)
    body = header + bytes(cells)
    if len(body) > mapping.config_bytes - 4:
        raise BitstreamError(
            f"stage {dfg.name!r}: configuration needs {len(body) + 4} bytes, "
            f"fabric budget is {mapping.config_bytes}")
    body += b"\x00" * (mapping.config_bytes - 4 - len(body))
    checksum = zlib.crc32(body) & 0xFFFFFFFF
    return body + struct.pack("<I", checksum)


def parse_bitstream(data: bytes, fabric: FabricSpec):
    """Parse a bitstream back into header fields and cell configuration.

    Returns ``(info, cells)`` where ``info`` is a dict of header fields
    and ``cells`` maps ``(row, col)`` to ``(OpKind, operand_coords)``.
    """
    if len(data) != fabric.config_bytes:
        raise BitstreamError(
            f"expected {fabric.config_bytes} bytes, got {len(data)}")
    body, checksum = data[:-4], struct.unpack("<I", data[-4:])[0]
    if zlib.crc32(body) & 0xFFFFFFFF != checksum:
        raise BitstreamError("checksum mismatch")
    magic, replication, lane_width, n_levels, _, name_hash = struct.unpack(
        "<4sBBBBI4x", body[:16])
    if magic != MAGIC:
        raise BitstreamError(f"bad magic {magic!r}")
    cells = {}
    for flat in range(fabric.n_functional_units):
        offset = 16 + 4 * flat
        opcode = body[offset]
        if opcode == 0:
            continue
        refs = [
            _unpack_ref(b) for b in body[offset + 1:offset + 4]
            if b != _NO_OPERAND
        ]
        row, col = flat // fabric.cols, flat % fabric.cols
        cells[(row, col)] = (_KINDS[opcode], refs)
    info = {
        "replication": replication,
        "lane_width": lane_width,
        "n_levels": n_levels,
        "name_hash": name_hash,
    }
    return info, cells
