"""Process-pool sweep runner: fan experiment points across cores.

A sweep is an ordered list of :class:`SweepPoint` coordinates.
``run_sweep`` executes them — inline for ``workers<=1``, else on a
``ProcessPoolExecutor`` — and returns the ``ExperimentResult`` list in
input order regardless of completion order. Results are deterministic
by construction: every point is fully described by its coordinates
(config, seed, scale, engine), workers share nothing, and the parent
process writes all manifests itself in input order so per-point
manifest names (which carry collision suffixes) never depend on
completion order. A merged ``sweep.json`` manifest, stripped of
volatile keys (wall time, timestamps), is byte-identical across
repeats and across worker counts — the seed-determinism property test
locks this down.

The figure benchmarks (``bench_fig13``–``17``, ``bench_scaling``) use
this to regenerate their result grids in parallel.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.harness.run import (ExperimentResult, default_scale, prepare_input,
                               run_experiment)
from repro.stats.manifest import (MANIFEST_SCHEMA_VERSION, build_manifest,
                                  strip_volatile, write_manifest)


@dataclass(frozen=True)
class SweepPoint:
    """One experiment of a sweep: keyword coordinates for
    :func:`run_experiment`. Frozen and hashable (``SystemConfig`` is a
    frozen dataclass) so benchmark helpers can memoize on it."""

    app: str
    input_code: str
    system: str
    variant: str = "decoupled"
    scale: Optional[float] = None
    seed: int = 1
    engine: str = "fast"
    config: Optional[SystemConfig] = None
    max_cycles: float = 2e9
    check: bool = True
    profile: bool = False

    @property
    def label(self) -> str:
        return (f"{self.app}/{self.input_code}/{self.system}/{self.variant}"
                f"/seed{self.seed}")


@lru_cache(maxsize=32)
def _prepared_cached(app: str, code: str, scale: float, seed: int):
    """Per-process input cache: points that share an input (e.g. the
    four systems of a Fig. 13 column) prepare it once per worker."""
    return prepare_input(app, code, scale=scale, seed=seed)


def _run_point(point: SweepPoint) -> ExperimentResult:
    """Execute one point (runs in a worker process or inline)."""
    scale = (point.scale if point.scale is not None
             else default_scale(point.app, point.input_code))
    prepared = _prepared_cached(point.app, point.input_code, scale,
                                point.seed)
    return run_experiment(point.app, point.input_code, point.system,
                          prepared=prepared, variant=point.variant,
                          config=point.config, scale=scale, seed=point.seed,
                          max_cycles=point.max_cycles, check=point.check,
                          engine=point.engine, profile=point.profile)


def merge_sweep_manifests(manifests: Sequence[dict]) -> dict:
    """Combine per-point manifests into one deterministic document.

    Volatile keys (timestamps, wall time) are stripped from every
    point, so the merged manifest of a given sweep is byte-identical
    across repeats and across ``workers=1`` vs ``workers=N``.
    """
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "sweep",
        "n_points": len(manifests),
        "points": [strip_volatile(m) for m in manifests],
    }


def run_sweep(points: Sequence[SweepPoint], workers: Optional[int] = None,
              manifest_dir=None) -> list:
    """Run every point and return results in input order.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` (or a
    single point) runs inline with no pool. With ``manifest_dir`` set,
    the parent writes one manifest per point in input order plus a
    merged ``sweep.json`` (overwritten, volatile keys stripped).
    """
    points = list(points)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(points) <= 1:
        results = [_run_point(point) for point in points]
    else:
        with ProcessPoolExecutor(max_workers=min(workers,
                                                 len(points))) as pool:
            results = list(pool.map(_run_point, points))
    if manifest_dir is not None:
        manifests = [build_manifest(result) for result in results]
        for manifest in manifests:
            write_manifest(manifest, manifest_dir)
        merged = merge_sweep_manifests(manifests)
        path = Path(manifest_dir) / "sweep.json"
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return results
