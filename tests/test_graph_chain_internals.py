"""Unit tests for GraphPipelineWorkload internals (fringe buffers,
barrier stepping, scan ranges, program assembly)."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.datasets.graphs import power_law_graph
from repro.workloads.bfs import BFSWorkload
from repro.workloads.common import shard_of


@pytest.fixture
def workload():
    graph = power_law_graph(100, 4.0, seed=40)
    return BFSWorkload(graph, n_shards=4, source=0)


class TestFringeBuffers:
    def test_initial_fringe_recorded(self, workload):
        shard = shard_of(0, 4)
        assert workload._write_count[shard] == 1
        assert workload._fringe_arrays[shard][0][0] == 0

    def test_append_returns_written_address(self, workload):
        addr = workload._append_touched(1, 17)
        assert addr == workload._fringe_refs[1][0].addr(1 if 1 == shard_of(0, 4) else 0)
        assert workload._fringe_arrays[1][0][workload._write_count[1] - 1] == 17

    def test_barrier_swaps_buffers(self, workload):
        before = list(workload._write_half)
        directives = workload.barrier_step(0)
        assert directives is not None
        # Every shard's write half flipped; counts reset.
        assert workload._write_half == [h ^ 1 for h in before]
        assert workload._write_count == [0] * 4
        # The dispatched (count, half) points at the data written before.
        shard = shard_of(0, 4)
        count, half = directives[shard]
        assert count == 1 and half == before[shard]

    def test_barrier_returns_none_when_empty(self, workload):
        workload.barrier_step(0)       # consumes the initial fringe
        assert workload.barrier_step(1) is None

    def test_iteration_cap(self):
        graph = power_law_graph(100, 4.0, seed=41)
        workload = BFSWorkload(graph, n_shards=4, source=0)
        workload.max_iterations = 1
        assert workload.barrier_step(0) is not None
        workload._append_touched(0, 5)  # pretend S3 found work
        assert workload.barrier_step(1) is None  # capped

    def test_scan_range_covers_count_words(self, workload):
        base, end = workload.fringe_scan_range(2, 0, 7)
        assert base == workload._fringe_refs[2][0].addr(0)
        assert end - base == 7 * 8


class TestProgramAssembly:
    def test_fifer_layout_one_pipeline_per_pe(self, workload):
        config = SystemConfig(n_pes=4)
        program = workload.build_program(config, "fifer")
        assert program.n_pes == 4
        for pe_program in program.pe_programs:
            assert len(pe_program.stage_specs) == 4
            assert len(pe_program.drm_specs) == 4
            assert len(pe_program.queue_specs) == 9

    def test_static_layout_one_stage_per_pe(self):
        graph = power_law_graph(100, 4.0, seed=42)
        workload = BFSWorkload(graph, n_shards=4, source=0)
        config = SystemConfig(n_pes=16)
        program = workload.build_program(config, "static")
        assert program.n_pes == 16
        for pe_program in program.pe_programs:
            assert len(pe_program.stage_specs) == 1
        # 4 shards x 4 stages; shard ids repeat every 4 PEs.
        shards = [p.shard for p in program.pe_programs]
        assert shards == [s for s in range(4) for _ in range(4)]

    def test_shard_mismatch_rejected(self, workload):
        config = SystemConfig(n_pes=16)
        with pytest.raises(ValueError):
            workload.build_program(config, "fifer")  # built for 4 shards

    def test_queue_names_globally_unique(self, workload):
        config = SystemConfig(n_pes=4)
        program = workload.build_program(config, "fifer")
        names = [spec.name for pe in program.pe_programs
                 for spec in pe.queue_specs]
        assert len(names) == len(set(names))

    def test_inbox_producers_cover_all_shards(self, workload):
        config = SystemConfig(n_pes=4)
        program = workload.build_program(config, "fifer")
        inbox = next(spec for pe in program.pe_programs
                     for spec in pe.queue_specs
                     if spec.name == "bfs.inbox@0")
        assert len(inbox.producers) == 4
        assert all("drm_val" in p for p in inbox.producers)

    def test_dfgs_reference_real_queue_names(self, workload):
        config = SystemConfig(n_pes=4)
        program = workload.build_program(config, "fifer")
        declared = {spec.name for pe in program.pe_programs
                    for spec in pe.queue_specs}
        for pe_program in program.pe_programs:
            for stage in pe_program.stage_specs:
                for queue in stage.dfg.input_queues():
                    assert queue in declared, queue
