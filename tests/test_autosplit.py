"""Auto-decoupling analyzer suite (ISSUE 10).

The acceptance bar: for every registered kernel, the analyzer's
top-ranked split — inferred from a dependence graph with every
annotation stripped — equals the hand-marked split, and applying it
lowers through the unchanged pipeline to a *bit-identical* artifact
(equal kernel fingerprints, equal compile descriptions, identical
simulated runs on both engines) that passes the deadlock certifier.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.autosplit import (AutosplitError, SplitCostModel,
                                      advise_kernel, apply_and_verify,
                                      apply_split, detect_patterns,
                                      infer_split)
from repro.analysis.depgraph import (build_dependence_graph, clone_kernel,
                                     strip_annotations)
from repro.cache import ArtifactCache, kernel_fingerprint
from repro.config import SystemConfig
from repro.core import ENGINES, System
from repro.frontend import FrontendError, compile_kernel
from repro.frontend.kernel import GraphKernel
from repro.frontend.kernels import FRONTEND_KERNELS
from repro.frontend.lower import _demo_graph

_settings = settings(max_examples=16, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# -- dependence graph ------------------------------------------------------

def test_bfs_dependence_graph_accesses():
    dg = build_dependence_graph(FRONTEND_KERNELS["bfs"]())
    by_ref = {}
    for access in dg.loads():
        by_ref.setdefault(access.ref, []).append(access)
    # Two affine CSR-bound loads at depth 1.
    assert [(a.index_class, a.depth) for a in by_ref["offsets"]] == \
        [("affine", 1), ("affine", 1)]
    # The neighbor enumeration streams an affine range at depth 2.
    (ngh,) = by_ref["neighbors"]
    assert (ngh.index_class, ngh.depth) == ("affine", 2)
    # The routed value fetch is indirect, at depth 3, on a mutable ref.
    (dv,) = by_ref["distances"]
    assert (dv.index_class, dv.depth, dv.mutable_ref) == ("indirect", 3, True)
    # The store writes the same array at the same indirect index.
    (store,) = dg.stores()
    assert (store.ref, store.index_class) == ("distances", "indirect")


def test_bfs_dependence_edge_kinds():
    dg = build_dependence_graph(FRONTEND_KERNELS["bfs"]())
    kinds = {e.dep for e in dg.edges}
    assert kinds == {"data", "control", "memory", "loop"}
    # The store's RAW edge into the guard load is memory-carried.
    (dv,) = [a for a in dg.loads() if a.ref == "distances"]
    (store,) = dg.stores()
    raw = [e for e in dg.edges_of("memory")
           if e.src == store.node and e.dst == dv.node]
    assert raw and raw[0].carried
    # The push feeds the next iteration's fringe: the loop-carried edge.
    (loop,) = dg.edges_of("loop")
    assert loop.carried and loop.detail == "next-iteration fringe"
    # Both update statements are guarded by the when() predicate.
    assert len(dg.edges_of("control")) == 2


def test_indirect_chains_thread_through_edge_loop():
    dg = build_dependence_graph(FRONTEND_KERNELS["bfs"]())
    chains = dg.indirect_chains()
    refs = [[dg.value(n).attr.ref.name for n in chain] for chain in chains]
    # offsets -> neighbors -> distances, once per CSR bound.
    assert refs == [["offsets", "neighbors", "distances"]] * 2


def test_sssp_graph_classifies_edge_state_affine():
    dg = build_dependence_graph(FRONTEND_KERNELS["sssp"]())
    (w,) = [a for a in dg.loads() if a.ref == "weights"]
    assert (w.index_class, w.depth, w.in_edge_loop) == ("affine", 2, True)


def test_as_dict_round_trips_to_json():
    import json
    dg = build_dependence_graph(FRONTEND_KERNELS["cc"]())
    document = json.loads(json.dumps(dg.as_dict(), sort_keys=True))
    assert document["kernel"] == "cc"
    assert len(document["accesses"]) == len(dg.accesses)


# -- kernel cloning --------------------------------------------------------

@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_clone_preserves_fingerprint(name):
    kernel = FRONTEND_KERNELS[name]()
    assert kernel_fingerprint(clone_kernel(kernel)) == \
        kernel_fingerprint(kernel)


@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_strip_removes_every_marking(name):
    stripped = strip_annotations(FRONTEND_KERNELS[name]())
    loads = [v for v in stripped.values if v.op == "load"]
    assert loads and all(not v.attr.marked and not v.attr.owner
                         for v in loads)
    assert stripped.unmarked_accesses() == loads


def test_stripped_kernel_refuses_to_compile():
    stripped = strip_annotations(FRONTEND_KERNELS["bfs"]())
    with pytest.raises(FrontendError, match="repro advise"):
        compile_kernel(stripped, cache=ArtifactCache())


# -- inference: parity with the hand-marked kernels (satellite d) ----------

@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_top_ranked_split_matches_hand_marked(name):
    kernel = FRONTEND_KERNELS[name]()
    advice = advise_kernel(kernel)
    assert advice.matches_hand_marked is True
    # The top-ranked candidate is the owner-routed deep fetch, exactly
    # the access the author marked owner=True.
    top = advice.candidates[0]
    assert top.role == "owner-fetch" and top.owner
    (hand_owner,) = [v for v in kernel.values
                     if v.op == "load" and v.attr.owner]
    assert top.node == f"v{hand_owner.vid}"


@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_inference_is_annotation_free(name):
    kernel = FRONTEND_KERNELS[name]()
    on_marked = infer_split(kernel)
    on_stripped = infer_split(strip_annotations(kernel))
    assert on_marked.decision == on_stripped.decision
    assert on_marked.owner_node == on_stripped.owner_node
    assert [c.node for c in on_marked.candidates] == \
        [c.node for c in on_stripped.candidates]


@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_detectors_fire_on_every_kernel(name):
    dg = build_dependence_graph(FRONTEND_KERNELS[name]())
    kinds = {m.kind for m in detect_patterns(dg)}
    assert {"indirect-load-chain", "owner-write-conflict",
            "reduction"} <= kinds


def test_cost_model_prefers_indirect_deep_fetch():
    model = SplitCostModel(SystemConfig())
    advice = infer_split(strip_annotations(FRONTEND_KERNELS["bfs"]()))
    scores = {c.role: c.score for c in advice.candidates}
    assert scores["owner-fetch"] > scores["edge-enumerate"] > \
        scores["csr-bounds"]
    # Indirect accesses price at main-memory latency, affine at LLC.
    config = SystemConfig()
    assert model.latency(advice_access(advice, "owner-fetch")) == \
        config.memory.latency
    assert model.latency(advice_access(advice, "csr-bounds")) == \
        config.llc_latency


def advice_access(advice, role):
    """The depgraph Access behind the first candidate with ``role``."""
    from repro.analysis.depgraph import Access
    cand = next(c for c in advice.candidates if c.role == role)
    return Access(node=cand.node, ref=cand.ref, mode="load",
                  index_class=cand.index_class, depth=cand.depth,
                  owner=cand.owner, marked=True,
                  in_edge_loop=cand.depth >= 2, mutable_ref=True)


def test_no_store_means_no_owner_candidate():
    k = GraphKernel("readonly")
    vals = k.state("vals", init=lambda g, p: np.zeros(g.n_vertices,
                                                      dtype=np.int64))
    k.start_from("all")
    v = k.vertex()
    start = k.access(k.offsets, v)
    end = k.access(k.offsets, v + 1)
    with k.edges(start, end) as e:
        ngh = k.access(k.neighbors, e)
        k.access(vals, ngh)
    with pytest.raises(AutosplitError, match="owner-write conflict"):
        infer_split(k)


def test_no_accesses_means_nothing_to_decouple():
    k = GraphKernel("empty")
    with pytest.raises(AutosplitError, match="nothing to decouple"):
        infer_split(k)


# -- application: bit-identity (the tentpole's acceptance bar) -------------

@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_apply_reproduces_hand_marked_fingerprint(name):
    kernel = FRONTEND_KERNELS[name]()
    stripped = strip_annotations(kernel)
    applied = apply_split(stripped, infer_split(stripped))
    assert kernel_fingerprint(applied) == kernel_fingerprint(kernel)


@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_apply_and_verify_manifest(name):
    manifest = apply_and_verify(FRONTEND_KERNELS[name]())
    assert manifest["advice"]["matches_hand_marked"] is True
    assert manifest["fingerprints"]["equal"]
    assert manifest["describe"]["equal"]
    assert manifest["lint"]["ok"] and manifest["lint"]["certified"]
    assert [s["stage"] for s in manifest["stage_dataflow"]] == \
        ["S0:fringe", "S1:enum", "S2:fetch", "S3:update"]
    assert all(s["dependence_edges"] > 0 and s["longest_chain"] > 0
               for s in manifest["stage_dataflow"])


def _run(kernel, engine):
    cache = ArtifactCache()
    config = SystemConfig()
    program, _ = compile_kernel(kernel, cache=cache).build(
        _demo_graph(), config, "fifer", "decoupled")
    return System(config, program, mode="fifer").run(engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_auto_split_runs_bit_identical(name, engine):
    kernel = FRONTEND_KERNELS[name]()
    stripped = strip_annotations(kernel)
    applied = apply_split(stripped, infer_split(stripped))
    hand = _run(kernel, engine)
    auto = _run(applied, engine)
    assert auto.cycles == hand.cycles
    assert auto.cpi_stacks() == hand.cpi_stacks()
    assert np.array_equal(auto.result, hand.result)


def test_unannotated_kernel_end_to_end():
    """A kernel written with access() only — no author decisions at all —
    infers, applies, and compiles to the hand-marked BFS artifact."""
    hand = FRONTEND_KERNELS["bfs"]()

    k = GraphKernel("bfs", doc="BFS: distance in hops from a source")
    k.param("source", 0)
    dist = k.state("distances", init=hand.refs[0].init, output=True)
    k.start_from("source", "source")
    v = k.vertex()
    start = k.access(k.offsets, v)
    end = k.access(k.offsets, v + 1)
    with k.edges(start, end) as e:
        ngh = k.access(k.neighbors, e)
        dv = k.access(dist, ngh)
        with k.when(dv < 0):
            k.store(dist, ngh, k.epoch())
            k.push(ngh)

    with pytest.raises(FrontendError):
        compile_kernel(k, cache=ArtifactCache())
    applied = apply_split(k, infer_split(k))
    assert kernel_fingerprint(applied) == kernel_fingerprint(hand)
    compile_kernel(applied, cache=ArtifactCache())  # splits and lints


# -- property test: inference across the kernel design space --------------

def _init_val(graph, params):
    val = np.full(graph.n_vertices, 1 << 40, dtype=np.int64)
    val[int(params["source"])] = 0
    return val


def _init_w(graph, params):
    return np.ones(max(1, graph.n_edges), dtype=np.int64)


def _variant_kernel(use_vertex_state, use_edge_weights, dedup,
                    marked=True):
    """A supported-envelope kernel variant (sssp/cc/bfs-shaped)."""
    k = GraphKernel("variant")
    k.param("source", 0)
    val = k.state("val", init=_init_val, output=True)
    wref = (k.state("wts", size="edges", mutable=False, init=_init_w)
            if use_edge_weights else None)
    k.start_from("source", "source")

    def get(ref, index, owner=False):
        return (k.load(ref, index, owner=owner) if marked
                else k.access(ref, index))

    v = k.vertex()
    mine = get(val, v) if use_vertex_state else None
    start = get(k.offsets, v)
    end = get(k.offsets, v + 1)
    if use_vertex_state and not use_edge_weights:
        cand = mine + 1
    elif not use_vertex_state and not use_edge_weights:
        cand = k.epoch() + 1
    with k.edges(start, end) as e:
        ngh = get(k.neighbors, e)
        if use_edge_weights:
            w = get(wref, e)
            cand = (mine + w) if use_vertex_state else (w + 1)
        cur = get(val, ngh, owner=True)
        with k.when(cand < cur):
            k.store(val, ngh, cand)
            k.push(ngh, dedup=dedup)
    return k


@given(use_vertex_state=st.booleans(), use_edge_weights=st.booleans(),
       dedup=st.booleans())
@_settings
def test_inferred_split_matches_across_design_space(
        use_vertex_state, use_edge_weights, dedup):
    hand = _variant_kernel(use_vertex_state, use_edge_weights, dedup)
    unmarked = _variant_kernel(use_vertex_state, use_edge_weights, dedup,
                               marked=False)
    advice = infer_split(unmarked)
    applied = apply_split(unmarked, advice)
    assert kernel_fingerprint(applied) == kernel_fingerprint(hand)
    # The applied artifact passes split analysis and lint.
    compile_kernel(applied, cache=ArtifactCache())
    # And the advice matches the hand markings directly.
    assert advise_kernel(hand).matches_hand_marked is True


# -- CLI -------------------------------------------------------------------

def test_cli_advise_json(capsys):
    import json
    from repro.cli import main
    assert main(["advise", "bfs", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["kernel"] == "bfs"
    assert document["matches_hand_marked"] is True
    assert document["candidates"][0]["role"] == "owner-fetch"


def test_cli_advise_all_text(capsys):
    from repro.cli import main
    assert main(["advise", "all"]) == 0
    out = capsys.readouterr().out
    for name in FRONTEND_KERNELS:
        assert f"{name}:" in out
    assert "matches the hand-marked split" in out


def test_cli_advise_apply(capsys):
    import json
    from repro.cli import main
    assert main(["advise", "sssp", "--apply", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["fingerprints"]["equal"]
    assert manifest["lint"]["certified"]
