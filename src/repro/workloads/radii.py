"""Graph radii estimation via multiple simultaneous BFS (paper Sec. 7.2).

Radii estimates the diameter of a graph by launching breadth-first
searches from a random sample of up to 64 source vertices at once,
Ligra-style: each source owns one bit of a 64-bit visited mask; an
active vertex ORs its mask into each neighbor's next-mask, and a vertex
whose mask grows becomes active with its eccentricity estimate updated
to the current round. The largest estimate over all vertices
approximates the graph radius/diameter.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graphs import CSRGraph
from repro.workloads.common import GraphPipelineWorkload


def _sample_sources(n: int, k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.choice(n, size=min(k, n), replace=False).astype(np.int64)


def radii_reference(graph: CSRGraph, k: int = 64, seed: int = 7,
                    max_iterations=None) -> np.ndarray:
    """Golden multi-source BFS; returns per-vertex eccentricity estimates.

    ``max_iterations`` caps the number of edge-propagation rounds (the
    paper samples a subset of iterations for Radii, Sec. 7.2); the
    final round's touched vertices are then left unabsorbed, exactly as
    in the capped pipeline run.
    """
    n = graph.n_vertices
    sources = _sample_sources(n, k, seed)
    visited = np.zeros(n, dtype=np.uint64)
    next_visited = np.zeros(n, dtype=np.uint64)
    radii = np.full(n, -1, dtype=np.int64)
    for bit, src in enumerate(sources):
        visited[src] |= np.uint64(1 << bit)
        radii[src] = 0
    fringe = sorted(int(s) for s in set(sources))
    iteration = 0
    while fringe:
        iteration += 1
        touched = set()
        for v in fringe:
            mask = visited[v]
            for ngh in graph.neighbors_of(v):
                combined = next_visited[ngh] | mask
                if combined != next_visited[ngh]:
                    next_visited[ngh] = combined
                    touched.add(int(ngh))
        if max_iterations is not None and iteration >= max_iterations:
            break
        fringe = []
        for v in sorted(touched):
            if next_visited[v] | visited[v] != visited[v]:
                visited[v] |= next_visited[v]
                radii[v] = iteration
                fringe.append(v)
    return radii


class RadiiWorkload(GraphPipelineWorkload):
    """Pipeline-parallel radii estimation."""

    name = "radii"
    # drm_off also fetches the arriving next-mask and the visited mask.
    vertex_fetch_words = 2

    def __init__(self, graph: CSRGraph, n_shards: int, k: int = 64,
                 seed: int = 7, max_iterations=None):
        self.k = k
        self.seed = seed
        self.max_iterations = max_iterations
        super().__init__(graph, n_shards)

    def setup(self) -> None:
        n = self.graph.n_vertices
        self.sources = _sample_sources(n, self.k, self.seed)
        self.visited = np.zeros(n, dtype=np.uint64)
        self.radii = np.full(n, -1, dtype=np.int64)
        for bit, src in enumerate(self.sources):
            self.visited[src] |= np.uint64(1 << bit)
            self.radii[src] = 0
        self.visited_ref = self.space.alloc_array("visited", n)
        self.radii_ref = self.space.alloc_array("radii", n)
        self.memmap.register(self.visited_ref, self.visited)
        self.memmap.register(self.radii_ref, self.radii)
        # The next-mask accumulator is double-buffered: S3 of round k
        # writes one half while S0 of round k absorbs the other; the
        # control core swaps halves at the barrier. A single buffer
        # would let round-(k+1) pushes leak into round-k absorption
        # (the pipeline overlaps both within an iteration).
        self.next_visited = [np.zeros(n, dtype=np.uint64) for _ in range(2)]
        self.next_refs = [self.space.alloc_array(f"next_visited.{i}", n)
                          for i in range(2)]
        for ref, array in zip(self.next_refs, self.next_visited):
            self.memmap.register(ref, array)
        self._write_buf = 0
        self.round = 1
        self._in_next = [set() for _ in range(self.n_shards)]

    def value_addr(self, ngh: int) -> int:
        return self.next_refs[self._write_buf].addr(ngh)

    def initial_fringe(self):
        return sorted(int(s) for s in set(self.sources))

    def vertex_fetch_addrs(self, v: int) -> tuple:
        read_buf = self._write_buf ^ 1
        return (self.next_refs[read_buf].addr(v), self.visited_ref.addr(v))

    def vertex_process(self, ctx, shard: int, v: int, start: int, end: int):
        """Fold the vertex update in: absorb next-mask, stamp the radius.

        Touched vertices whose mask did not actually grow (the bits had
        already reached them in an earlier round) are filtered out here.
        The mask words arrive with the decoupled vertex fetch; the
        authoritative values are re-read from the arrays.
        """
        read_buf = self._write_buf ^ 1
        if self.round > 1:
            arrived = self.next_visited[read_buf][v]
            self.next_visited[read_buf][v] = np.uint64(0)
            combined = self.visited[v] | arrived
            if combined == self.visited[v]:
                return None
            self.visited[v] = combined
            self.radii[v] = self.round - 1
            yield ("store", self.visited_ref.addr(v))
            yield ("store", self.radii_ref.addr(v))
        return int(self.visited[v])

    def s3_update(self, ctx, shard: int, ngh: int, value, p0):
        mask = np.uint64(p0)
        buf = self._write_buf
        combined = self.next_visited[buf][ngh] | mask
        if combined != self.next_visited[buf][ngh]:
            self.next_visited[buf][ngh] = combined
            yield ("store", self.next_refs[buf].addr(ngh))
            if ngh not in self._in_next[shard]:
                self._in_next[shard].add(ngh)
                yield from self.push_touched(ctx, shard, ngh)

    def at_barrier(self, iteration: int) -> None:
        self.round += 1
        self._write_buf ^= 1
        for pending in self._in_next:
            pending.clear()

    def result(self) -> np.ndarray:
        return self.radii

    def vertex_extra_ops(self, b, v_node):
        # Absorb: OR the arriving mask into visited, compare, select.
        absorbed = b.or_(v_node, b.ctrl(v_node))
        grew = b.eq(absorbed, v_node)
        return b.sel(grew, absorbed, v_node)

    def s3_extra_ops(self, b, value_node, payload_node):
        return b.or_(value_node, payload_node)


def build(graph: CSRGraph, config, mode: str, variant: str = "decoupled",
          k: int = 64, seed: int = 7, max_iterations=None):
    from repro.workloads.common import shards_for_mode

    n_stages = 4 if variant == "decoupled" else 2
    workload = RadiiWorkload(graph, shards_for_mode(config, mode, n_stages),
                             k=k, seed=seed, max_iterations=max_iterations)
    return workload.build_program(config, mode, variant), workload
