"""Per-PE queue memory: a small SRAM statically carved into queues.

The baseline and Fifer PEs store all their queues in a 16 KB buffer
(paper Sec. 3); the buffer is statically divided among the queues, each
managed as a circular buffer. Fifer adds intra-PE queues by adding
head/tail pointers in the same buffer (Sec. 5.3), so temporal pipelines
with many stages get *less effective space per queue* — the property the
Fig. 16 queue-size sweep studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.queues.queue import Queue

WORD_BYTES = 8


class QueueMemoryError(Exception):
    """Raised when the queue memory cannot host the requested queues."""


@dataclass(frozen=True)
class QueueSpec:
    """Declaration of one queue to be carved from a PE's queue memory.

    ``weight`` sets the relative share of the buffer; memory accrues to
    queues proportionally (the static division of paper Sec. 3).
    """

    name: str
    entry_words: int = 1
    weight: float = 1.0
    producers: tuple = field(default=())
    # Marks queues that only ever carry control values from the control
    # core (iteration dispatch); blocked dequeues on these are reported
    # as idle time, not queue-empty stalls.
    control_only: bool = False

    def __post_init__(self):
        if self.entry_words < 1:
            raise ValueError(
                f"queue {self.name!r}: entry_words must be positive, "
                f"got {self.entry_words}")
        if self.weight <= 0:
            raise ValueError(
                f"queue {self.name!r}: weight must be positive, "
                f"got {self.weight}")

    @property
    def floor_words(self) -> int:
        """Minimum carve: one entry per producer so credit-based flow
        control has at least one credit each."""
        return self.entry_words * max(1, len(self.producers))


def plan_capacities(budget_words: int, specs: Sequence[QueueSpec]) -> list[int]:
    """Pure capacity plan: divide ``budget_words`` among ``specs``.

    Memory accrues proportionally to ``weight``, with each queue floored
    at one entry per producer. If the floors alone exceed the budget the
    plan over-allocates (``sum(plan) > budget_words``) — callers that
    care, e.g. the static analyzer's budget pass, must check for that.
    """
    total_weight = sum(s.weight for s in specs)
    if total_weight <= 0:
        raise QueueMemoryError("total queue weight must be positive")
    capacities = []
    for spec in specs:
        words = int(budget_words * spec.weight / total_weight)
        # Every queue must hold at least one entry per producer so
        # credit-based flow control has at least one credit each.
        capacities.append(max(words, spec.floor_words))
    if sum(capacities) > budget_words and sum(capacities) > sum(
            s.floor_words for s in specs):
        # Shrink proportionally if the floors pushed us over budget.
        over = sum(capacities) - budget_words
        for i, spec in enumerate(specs):
            give = min(over, capacities[i] - spec.floor_words)
            capacities[i] -= give
            over -= give
            if over <= 0:
                break
    return capacities


class QueueMemory:
    """Carves a byte budget into :class:`Queue` objects."""

    def __init__(self, capacity_bytes: int, max_queues: int = 16):
        if capacity_bytes < WORD_BYTES:
            raise QueueMemoryError(
                f"queue memory of {capacity_bytes} bytes holds no words")
        self.capacity_bytes = capacity_bytes
        self.max_queues = max_queues
        self.queues: dict[str, Queue] = {}

    @property
    def capacity_words(self) -> int:
        return self.capacity_bytes // WORD_BYTES

    def carve(self, specs: Sequence[QueueSpec]) -> dict[str, Queue]:
        """Divide the buffer among ``specs`` and instantiate the queues."""
        if not specs:
            raise QueueMemoryError("no queues requested")
        if len(specs) > self.max_queues:
            raise QueueMemoryError(
                f"{len(specs)} queues exceed the {self.max_queues}-queue limit")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise QueueMemoryError(f"duplicate queue names in {names}")
        capacities = plan_capacities(self.capacity_words, specs)
        for spec, capacity in zip(specs, capacities):
            self.queues[spec.name] = Queue(
                spec.name, capacity, spec.entry_words, spec.producers,
                control_only=spec.control_only)
        return self.queues

    def __getitem__(self, name: str) -> Queue:
        return self.queues[name]

    @property
    def words_in_use(self) -> int:
        return sum(q.occupancy_words for q in self.queues.values())
