"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run APP INPUT [--system ...] [--variant ...] [--scale ...]`` —
  run one experiment, verify it, and print cycles, the CPI stack, and
  the energy breakdown.
* ``compare APP INPUT`` — run all four evaluated systems on one input
  and print a speedup chart (a one-input slice of Fig. 13).
* ``inputs`` — list the apps, their inputs, and the paper datasets the
  synthetic generators stand in for.
* ``trace APP INPUT [--format gantt|chrome|jsonl] [--out FILE]`` — run
  Fifer with full telemetry. ``gantt`` prints the ASCII per-PE stage
  timeline; ``chrome`` emits Chrome trace-event JSON (open it in
  https://ui.perfetto.dev — one track per PE, one counter track per
  queue); ``jsonl`` streams every structured event as JSON lines.
* ``compile WORKLOAD [--stage N] [--json]`` — run the decoupling
  front-end on an annotated kernel and print the generated stage list,
  the inter-stage queue graph, and per-stage pseudo-assembly (the
  dialect :mod:`repro.ir.asmparse` parses). ``--stage N`` narrows the
  output to one stage; ``--json`` emits the machine-readable
  description.
* ``stats APP INPUT [--json]`` — run one experiment and print its full
  statistics (CPI stack, cache/memory, residence); ``--json`` emits the
  machine-readable run manifest instead.
* ``lint APP [INPUT] [--json] [--suggest]`` — statically verify a
  workload's compiled pipeline (queue/deadlock analysis, DFG dataflow
  passes; see ``docs/analysis.md``) without simulating it. ``lint
  all`` verifies every registered workload; exits non-zero on any
  error finding (including builds that fail outright), zero when the
  certificate is issued — with or without assumptions. ``--suggest``
  appends info findings from the auto-decoupling analyzer.
* ``advise KERNEL [--json] [--apply]`` — run the auto-decoupling
  analyzer on an annotated kernel: build the whole-kernel dependence
  graph, detect patterns, rank candidate cut points with the
  queue-width cost model, and report whether the inferred split
  matches the hand markings. ``--apply`` rebuilds the kernel with the
  inferred markings, lowers it through the existing pipeline, and
  emits the verification manifest (kernel fingerprints, compile
  description digests, deadlock certificate). ``advise all`` covers
  every registered kernel.
* ``report DIR [DIR ...]`` — load run manifests (written by
  ``run_experiment(..., manifest_dir=...)`` or ``stats --manifest-dir``)
  and tabulate cycles, CPI shares, and relative speedups across runs.
* ``profile APP INPUT [--what-if TARGET=PCT] [--format text|json|
  folded]`` — run with the wait-for profiler armed and print the blame
  matrix, the critical path, and Coz-style what-if estimates;
  ``--validate`` re-simulates each what-if config to report prediction
  error. ``folded`` emits flamegraph.pl/speedscope folded stacks.
* ``bench-diff BASELINE CURRENT`` — regression observatory: compare
  manifest directories and flag cycle/blame/wall-time drifts beyond
  thresholds (exit 1 on failures). Committed baselines live under
  ``benchmarks/results/history/``.
* ``serve [--port N] [--cache-dir DIR] [--workers N]`` — run the
  experiment service: accepts JSON specs over HTTP, serves repeated
  specs from a content-addressed result cache, deduplicates identical
  in-flight submissions, streams progress events (``docs/service.md``).
* ``submit SPEC.json [--host H] [--port N] [--out FILE]`` — submit one
  spec to a running service; progress goes to stderr, the canonical
  run manifest to stdout (or FILE).
* ``cache stats|gc [--cache-dir DIR]`` — inspect or prune the local
  result store and compiled-artifact cache.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.config import SystemConfig
from repro.core import ENGINES
from repro.env import EnvKnobError
from repro.frontend import FRONTEND_KERNELS, get_frontend
from repro.harness import (SweepPoint, format_table, run_experiment,
                           run_sweep, speedup_table)
from repro.harness.report import bar_chart
from repro.harness.run import APP_INPUTS, SYSTEMS
from repro.stats.manifest import (build_manifest, load_manifests,
                                  summarize_manifests)
from repro.stats.telemetry import (EventBus, JsonlSink, PeriodicSampler,
                                   RecordingSink, chrome_trace)
from repro.stats.trace import ActivationTracer


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", choices=sorted(APP_INPUTS))
    parser.add_argument("input", metavar="INPUT",
                        help="input code (see `inputs`)")
    parser.add_argument("--scale", type=float, default=None,
                        help="input scale factor (default: per-input)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--engine", choices=ENGINES, default="fast",
                        help="simulation loop: fast (skips blocked spans, "
                             "default) or naive (per-cycle reference)")


def _check_input(app: str, code: str) -> None:
    if code not in APP_INPUTS[app]:
        raise SystemExit(
            f"unknown input {code!r} for {app}; choose from "
            f"{', '.join(APP_INPUTS[app])}")


def cmd_run(args) -> int:
    _check_input(args.app, args.input)
    result = run_experiment(args.app, args.input, args.system,
                            variant=args.variant, scale=args.scale,
                            seed=args.seed, engine=args.engine,
                            sanitize=args.sanitize)
    sanitized = " [sanitized]" if args.sanitize else ""
    print(f"{args.app}/{args.input} on {args.system} ({args.variant}): "
          f"{result.cycles:,.0f} cycles (verified against the "
          f"reference){sanitized}")
    raw = result.raw
    stack = raw.merged_cpi_stack()
    total = sum(stack.values())
    rows = [[bucket, f"{value:,.0f}", f"{value / total:.1%}"]
            for bucket, value in stack.items()]
    print()
    print(format_table(["bucket", "cycles", "share"], rows,
                       title="cycle breakdown (all contexts)"))
    print()
    rows = [[bucket, f"{joules * 1e6:.2f}"]
            for bucket, joules in result.energy.items()]
    print(format_table(["bucket", "energy (uJ)"], rows,
                       title="energy breakdown"))
    if args.system == "fifer":
        print(f"\navg residence {raw.avg_residence_cycles:.0f} cycles, "
              f"avg reconfiguration {raw.avg_reconfig_cycles:.1f} cycles")
    return 0


def cmd_compare(args) -> int:
    _check_input(args.app, args.input)
    points = [SweepPoint(args.app, args.input, system, scale=args.scale,
                         seed=args.seed, engine=args.engine)
              for system in SYSTEMS]
    results = dict(zip(SYSTEMS, run_sweep(points, workers=args.workers)))
    speedups = speedup_table(results)
    print(bar_chart(speedups,
                    title=f"{args.app}/{args.input}: speedup over the "
                          f"4-core OOO multicore"))
    return 0


def cmd_inputs(args) -> int:
    from repro.datasets.graphs import TABLE3_GRAPHS
    from repro.datasets.matrices import TABLE4_MATRICES
    rows = []
    for app, codes in APP_INPUTS.items():
        for code in codes:
            if code in TABLE3_GRAPHS:
                paper = TABLE3_GRAPHS[code]["paper"]
            elif code in TABLE4_MATRICES:
                paper = TABLE4_MATRICES[code]["paper"]
            else:
                paper = "YCSB-C zipfian lookups over a B+tree"
            rows.append([app, code, paper])
    print(format_table(["app", "input", "stands in for (paper Table 3/4)"],
                       rows))
    return 0


def _traceable_system(args):
    from repro.core import System
    from repro.harness.run import (_build_cgra_program, _system_config,
                                   prepare_input as prep)
    prepared = prep(args.app, args.input, scale=args.scale, seed=args.seed)
    config = _system_config(args.app, SystemConfig())
    program, _ = _build_cgra_program(prepared, config, "fifer", "decoupled")
    return System(config, program, mode="fifer")


def cmd_trace(args) -> int:
    _check_input(args.app, args.input)
    system = _traceable_system(args)

    if args.format == "gantt":
        with ActivationTracer().attach(system) as tracer:
            result = system.run(engine=args.engine)
        print(f"{args.app}/{args.input} on Fifer: {result.cycles:,.0f} "
              f"cycles, {len(tracer.events)} activations\n")
        print(tracer.gantt(result.cycles, max_pes=args.pes))
        shares = tracer.stage_cycle_share(result.cycles)
        total = sum(shares.values())
        print("\nresident-cycle share by stage:")
        for stage, share in sorted(shares.items(),
                                   key=lambda kv: -kv[1])[:12]:
            print(f"  {stage:<24} {share / total:6.1%}")
        return 0

    if args.sample_period <= 0:
        raise SystemExit("--sample-period must be positive")
    bus = EventBus()
    system.attach_telemetry(bus)
    sampler = bus.add_sampler(PeriodicSampler(args.sample_period))
    try:
        out = open(args.out, "w") if args.out else sys.stdout
    except OSError as exc:
        raise SystemExit(f"cannot write {args.out}: {exc}")
    try:
        if args.format == "jsonl":
            bus.subscribe(JsonlSink(out))
            result = system.run(engine=args.engine)
        else:  # chrome
            sink = bus.subscribe(RecordingSink(
                kinds=("stage.activate", "reconfig.begin")))
            result = system.run(engine=args.engine)
            json.dump(chrome_trace(sink.events, result.cycles,
                                   samples=sampler.samples,
                                   process_name=f"{args.app}/{args.input}"),
                      out, sort_keys=True)
            out.write("\n")
        bus.close()
    finally:
        if args.out:
            out.close()
    if args.out:
        print(f"{args.app}/{args.input} on Fifer: {result.cycles:,.0f} "
              f"cycles; {args.format} trace written to {args.out}",
              file=sys.stderr)
    return 0


def cmd_compile(args) -> int:
    from repro.frontend import describe_cached
    description = describe_cached(args.workload)
    stages = description["stages"]
    if args.stage is not None and not 0 <= args.stage < len(stages):
        raise SystemExit(
            f"no stage {args.stage}; {args.workload} has "
            f"{len(stages)} stages (0..{len(stages) - 1})")
    if args.emit_python:
        from repro.frontend import get_frontend
        records = get_frontend(args.workload).emit_python(stage=args.stage)
        if args.json:
            payload = records[0] if args.stage is not None else records
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        for i, rec in enumerate(records):
            if i:
                print()
            print(f"# stage {rec['index']}: {rec['name']} "
                  f"(role {rec['role']}, codegen key {rec['key'][:12]})")
            print(rec["source"], end="")
        return 0
    if args.json:
        payload = (stages[args.stage] if args.stage is not None
                   else description)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.stage is not None:
        stage = stages[args.stage]
        print(f"{stage['name']} — {stage['role']} "
              f"({stage['compute_ops']} ops, depth {stage['depth']})")
        for drm in stage["drms"]:
            print(f"  uses {drm}")
        print()
        print(stage["asm"], end="")
        return 0
    split = description["split"]
    print(f"{args.workload}: {description['doc']}")
    print(f"  owner-routed array: {split['owner_array']}; "
          f"vertex fetch {split['vertex_fetch_words']} word(s), "
          f"edge fetch {split['edge_fetch_words']} word(s)")
    print(f"  payload across edge cut: "
          f"{split['payload_across_edge_cut'] or '(none)'}; "
          f"across cross-shard hop: "
          f"{split['payload_across_hop'] or '(none)'}")
    print(f"  feed-forward: {description['feed_forward']}; "
          f"uses epoch: {split['uses_epoch']}; "
          f"dedup pushes: {split['dedup_pushes']}")
    print()
    rows = [[str(s["index"]), s["name"], s["role"],
             ", ".join(s["drms"]) or "-", str(s["compute_ops"]),
             str(s["depth"])] for s in stages]
    print(format_table(["#", "stage", "role", "DRMs", "ops", "depth"],
                       rows, title="generated stages (one replica shown; "
                                   "replicated per shard)"))
    print()
    rows = [[e["queue"], f"{e['src']} -> {e['dst']}", str(e["words"]),
             ("control" if e["control"]
              else "cross-shard" if e["cross_shard"] else "data")]
            for e in description["queues"]]
    print(format_table(["queue", "channel", "words", "kind"], rows,
                       title="inter-stage queue graph"))
    for stage in stages:
        print(f"\n; stage {stage['index']}: {stage['name']} "
              f"({stage['role']})")
        print(stage["asm"], end="")
    return 0


def _suggest_findings(app: str):
    """Info findings from the auto-decoupling analyzer (``--suggest``)."""
    from repro.analysis.autosplit import AutosplitError, advise_kernel
    from repro.analysis.report import Finding
    if app not in FRONTEND_KERNELS:
        return [Finding(
            "info", "autosplit.advise", app,
            f"{app}: no annotated kernel registered; the auto-decoupling "
            f"analyzer only advises front-end kernels "
            f"({', '.join(sorted(FRONTEND_KERNELS))})")]
    try:
        advice = advise_kernel(FRONTEND_KERNELS[app]())
    except AutosplitError as exc:
        return [Finding("warning", "autosplit.advise", app, str(exc))]
    top = advice.candidates[0]
    verdict = ("matches the hand-marked split"
               if advice.matches_hand_marked
               else "DIFFERS from the hand-marked split")
    return [Finding(
        "info", "autosplit.advise", app,
        f"{app}: inferred {len(advice.candidates)} cut point(s) from "
        f"{len(advice.patterns)} dependence pattern(s); top-ranked "
        f"{top.label} ({top.role}, score {top.score:.0f}); decision "
        f"{verdict} — see `repro advise {app}`")]


def cmd_lint(args) -> int:
    from repro.analysis.report import AnalysisReport, Finding
    from repro.harness.run import analyze_workload, default_scale
    if args.app == "all":
        if args.input is not None:
            raise SystemExit("lint all takes no INPUT argument")
        targets = [(app, APP_INPUTS[app][0]) for app in sorted(APP_INPUTS)]
    else:
        code = args.input or APP_INPUTS[args.app][0]
        _check_input(args.app, code)
        targets = [(args.app, code)]
    reports = []
    for app, code in targets:
        scale = args.scale
        if scale is None:
            # The pipeline topology is scale-independent; lint at a
            # small scale so input generation stays fast.
            scale = min(default_scale(app, code), 0.2)
        try:
            report = analyze_workload(
                app, code, system=args.system, variant=args.variant,
                scale=scale, seed=args.seed)
        except Exception as exc:
            # Exit-code contract: a workload that cannot even build is
            # an error finding (exit 1), not a traceback — certificates
            # with assumptions stay exit 0.
            report = AnalysisReport(program=f"{app}/{code}",
                                    mode=args.system)
            report.findings.append(Finding(
                "error", "lint.build", f"{app}/{code}",
                f"{type(exc).__name__}: {exc}"))
        if args.suggest:
            report.extend(_suggest_findings(app))
        reports.append(report)
    if args.json:
        payload = [r.as_dict() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
    return 0 if all(r.ok for r in reports) else 1


def cmd_advise(args) -> int:
    from repro.analysis.autosplit import (AutosplitError, advise_kernel,
                                          apply_and_verify)
    names = (sorted(FRONTEND_KERNELS) if args.kernel == "all"
             else [args.kernel])
    documents, ok = [], True
    for name in names:
        kernel = FRONTEND_KERNELS[name]()
        try:
            if args.apply:
                manifest = apply_and_verify(kernel)
                good = (manifest["advice"]["matches_hand_marked"]
                        is not False
                        and manifest["fingerprints"]["equal"]
                        and manifest["describe"]["equal"]
                        and manifest["lint"]["ok"])
                documents.append(manifest)
            else:
                advice = advise_kernel(kernel)
                good = advice.matches_hand_marked is not False
                documents.append(advice.as_dict())
        except AutosplitError as exc:
            documents.append({"kernel": name, "error": str(exc)})
            good = False
        ok = ok and good
    if args.json:
        print(json.dumps(documents[0] if len(documents) == 1
                         else documents, indent=2, sort_keys=True))
        return 0 if ok else 1
    for i, document in enumerate(documents):
        if i:
            print()
        if "error" in document:
            print(f"{document['kernel']}: ERROR {document['error']}")
            continue
        if not args.apply:
            kernel = FRONTEND_KERNELS[document["kernel"]]()
            print(advise_kernel(kernel).render())
            continue
        advice = document["advice"]
        print(f"{document['kernel']}: auto-split applied and verified")
        print(f"  decision matches hand-marked: "
              f"{advice['matches_hand_marked']}")
        print(f"  kernel fingerprints equal: "
              f"{document['fingerprints']['equal']}")
        print(f"  compile descriptions equal: "
              f"{document['describe']['equal']}")
        print(f"  deadlock certificate: "
              f"{'issued' if document['lint']['certified'] else 'NOT ISSUED'}"
              f" ({len(document['lint']['errors'])} error(s))")
        rows = [[s["stage"], str(s["nodes"]), str(s["dependence_edges"]),
                 str(s["reg_carried_edges"]), str(s["max_fanout"]),
                 str(s["longest_chain"])]
                for s in document["stage_dataflow"]]
        print()
        print(format_table(
            ["stage", "nodes", "dep edges", "reg-carried", "max fanout",
             "longest chain"], rows,
            title="auto-split stage dataflow (DFG dependence queries)"))
    return 0 if ok else 1


def cmd_stats(args) -> int:
    _check_input(args.app, args.input)
    result = run_experiment(args.app, args.input, args.system,
                            variant=args.variant, scale=args.scale,
                            seed=args.seed, engine=args.engine,
                            manifest_dir=args.manifest_dir,
                            sanitize=args.sanitize)
    manifest = build_manifest(result)
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(f"{result.label} ({result.variant}): {result.cycles:,.0f} cycles "
          f"in {result.wall_time_s:.2f}s wall time")
    stack = manifest["cpi_stack"]
    total = sum(stack.values()) or 1.0
    rows = [[bucket, f"{value:,.0f}", f"{value / total:.1%}"]
            for bucket, value in stack.items()]
    print()
    print(format_table(["bucket", "cycles", "share"], rows,
                       title="cycle breakdown (all contexts)"))
    caches = manifest["caches"]
    rows = [["l1 (aggregate)", f"{caches['l1']['hits']:,}",
             f"{caches['l1']['misses']:,}",
             f"{caches['l1']['hit_rate']:.1%}"],
            ["llc", f"{caches['llc'].get('hits', 0):,}",
             f"{caches['llc'].get('misses', 0):,}",
             f"{caches['llc'].get('hit_rate', 0.0):.1%}"]]
    print()
    print(format_table(["cache", "hits", "misses", "hit rate"], rows,
                       title="memory hierarchy"))
    mem = caches["memory"]
    print(f"\nmain memory: {mem.get('reads', 0):,} reads, "
          f"{mem.get('writes', 0):,} writes, "
          f"{mem.get('bytes', 0):,} bytes")
    if "avg_residence_cycles" in manifest:
        print(f"avg residence {manifest['avg_residence_cycles']:.0f} cycles, "
              f"avg reconfiguration {manifest['avg_reconfig_cycles']:.1f} "
              f"cycles")
    return 0


def cmd_profile(args) -> int:
    from repro.profiling import parse_whatif, predict_speedup
    _check_input(args.app, args.input)
    try:
        whatifs = [parse_whatif(spec) for spec in args.what_if]
    except ValueError as exc:
        raise SystemExit(str(exc))
    result = run_experiment(args.app, args.input, args.system,
                            variant=args.variant, scale=args.scale,
                            seed=args.seed, engine=args.engine,
                            profile=True)
    profile = result.profile
    predictions = [predict_speedup(profile, target, percent)
                   for target, percent in whatifs]
    if args.validate:
        from repro.profiling import validate_prediction
        for prediction in predictions:
            validate_prediction(prediction, args.app, args.input,
                                args.system, variant=args.variant,
                                scale=args.scale, seed=args.seed,
                                engine=args.engine)

    try:
        out = open(args.out, "w") if args.out else sys.stdout
    except OSError as exc:
        raise SystemExit(f"cannot write {args.out}: {exc}")
    try:
        if args.format == "folded":
            out.write(profile.critical_path().folded())
        elif args.format == "json":
            document = profile.as_dict()
            if predictions:
                document["what_if"] = [p.as_dict() for p in predictions]
            json.dump(document, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            _print_profile_text(args, result, predictions, out)
    finally:
        if args.out:
            out.close()
    if args.out:
        print(f"{args.app}/{args.input}: {args.format} profile written "
              f"to {args.out}", file=sys.stderr)
    return 0


def _print_profile_text(args, result, predictions, out) -> None:
    profile = result.profile
    print(f"{args.app}/{args.input} on {args.system} ({args.variant}): "
          f"{result.cycles:,.0f} cycles, {profile.profiler.n_events:,} "
          f"profiler events", file=out)
    rollup = profile.blame.rollup().waitee_totals()
    total = sum(rollup.values()) or 1.0
    rows = [[waitee, f"{cycles:,.0f}", f"{cycles / total:.1%}"]
            for waitee, cycles in rollup.items()]
    print(file=out)
    print(format_table(["waited on", "cycles", "share"], rows,
                       title="blame matrix (all PEs, stalled cycles by "
                             "culprit)"), file=out)
    path = profile.critical_path()
    rows = [[f"pe{seg.pe}", seg.kind, seg.name or "-",
             f"{seg.cycles:,.0f}"]
            for seg in path.ranked()[:args.top] if seg.cycles > 0]
    print(file=out)
    print(format_table(["pe", "kind", "component", "cycles"], rows,
                       title=f"critical path (top {args.top} of "
                             f"{len(path.ranked())} merged segments, "
                             f"weight {path.total_weight():,.0f})"),
          file=out)
    if predictions:
        rows = []
        for p in predictions:
            row = [p.target, f"{p.percent:.0f}%",
                   f"{p.predicted_cycles:,.0f}",
                   f"{p.predicted_speedup:.3f}x"]
            if p.actual_cycles == p.actual_cycles:  # validated
                row += [f"{p.actual_cycles:,.0f}", f"{p.error:.1%}"]
            else:
                row += ["-", "-"]
            rows.append(row)
        print(file=out)
        print(format_table(["target", "speedup", "predicted cycles",
                            "predicted", "actual cycles", "error"], rows,
                           title="what-if estimates (Coz-style virtual "
                                 "speedups)"), file=out)


def cmd_bench_diff(args) -> int:
    from repro.profiling import bench_diff
    try:
        report = bench_diff(args.baseline, args.current,
                            cycle_tol=args.cycle_tol,
                            blame_tol=args.blame_tol,
                            wall_ratio=args.wall_ratio)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from repro.service import run_server
    run_server(host=args.host, port=args.port, cache_root=args.cache_dir,
               workers=args.workers)
    return 0


def cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError
    try:
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec, "r", encoding="utf-8") as fh:
                text = fh.read()
    except OSError as exc:
        raise SystemExit(f"cannot read {args.spec}: {exc}")
    try:
        spec = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"{args.spec}: not valid JSON ({exc})")

    def on_event(event):
        if args.quiet:
            return
        if event["event"] == "queued":
            dedup = (" (joined an in-flight run)" if event.get("deduped")
                     else "")
            print(f"queued as {event['key'][:16]}…{dedup}", file=sys.stderr)
        elif event["event"] == "phase":
            print(f"  {event['phase']}", file=sys.stderr)

    client = ServiceClient(host=args.host, port=args.port,
                           timeout=args.timeout)
    try:
        outcome = client.submit(spec, on_event=on_event)
    except ServiceError as exc:
        raise SystemExit(f"service error: {exc}")
    except OSError as exc:
        raise SystemExit(
            f"cannot reach the service at {args.host}:{args.port} ({exc}); "
            f"start one with `repro serve`")
    if not args.quiet:
        source = ("result cache" if outcome.served_from_cache
                  else f"simulation, {outcome.wall_time_s:.2f}s compute")
        print(f"done (served from {source})", file=sys.stderr)
    text = outcome.manifest_bytes.decode("utf-8")
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        except OSError as exc:
            raise SystemExit(f"cannot write {args.out}: {exc}")
        if not args.quiet:
            print(f"manifest written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_cache(args) -> int:
    from pathlib import Path
    from repro.cache import (configure_artifact_cache, default_cache_root,
                             get_artifact_cache)
    from repro.service.store import ResultStore
    root = Path(args.cache_dir) if args.cache_dir else default_cache_root()
    cache = (configure_artifact_cache(root) if args.cache_dir
             else get_artifact_cache())
    store = ResultStore(root)
    if args.action == "stats":
        document = {"root": str(root), "results": store.stats(),
                    "artifacts": cache.stats()}
    else:  # gc
        document = {"root": str(root), "results": store.gc(),
                    "artifacts": cache.gc(all_versions=args.all)}
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def cmd_report(args) -> int:
    manifests = []
    try:
        for directory in args.dirs:
            manifests.extend(load_manifests(directory))
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not manifests:
        raise SystemExit(f"no manifests found under {', '.join(args.dirs)}")
    headers, rows = summarize_manifests(manifests)
    print(format_table(headers, rows,
                       title=f"run manifests ({len(manifests)} runs)"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fifer (MICRO 2021) reproduction: run the simulated "
                    "systems from the command line.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment")
    _add_common(p_run)
    p_run.add_argument("--system", choices=SYSTEMS, default="fifer")
    p_run.add_argument("--variant", choices=("decoupled", "merged"),
                       default="decoupled")
    p_run.add_argument("--sanitize", action="store_true",
                       help="arm the simulation sanitizer (per-quantum "
                            "token/credit conservation checks; "
                            "bit-identical results)")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="all four systems on one input")
    _add_common(p_cmp)
    p_cmp.add_argument("--workers", type=int, default=None, metavar="N",
                       help="run the four systems on a process pool "
                            "(default: one worker per CPU)")
    p_cmp.set_defaults(func=cmd_compare)

    p_inputs = sub.add_parser("inputs", help="list apps and inputs")
    p_inputs.set_defaults(func=cmd_inputs)

    p_trace = sub.add_parser(
        "trace", help="Fifer execution trace (ASCII, Perfetto, or JSONL)")
    _add_common(p_trace)
    p_trace.add_argument("--pes", type=int, default=8,
                         help="PEs to show in the Gantt chart")
    p_trace.add_argument("--format", choices=("gantt", "chrome", "jsonl"),
                         default="gantt",
                         help="gantt: ASCII chart; chrome: Perfetto-loadable "
                              "trace-event JSON; jsonl: raw event stream")
    p_trace.add_argument("--out", default=None, metavar="FILE",
                         help="write chrome/jsonl output here "
                              "(default: stdout)")
    p_trace.add_argument("--sample-period", type=float, default=512,
                         metavar="CYCLES",
                         help="queue-occupancy sampling period "
                              "(default: 512)")
    p_trace.set_defaults(func=cmd_trace)

    p_compile = sub.add_parser(
        "compile", help="split an annotated kernel into its stage pipeline")
    p_compile.add_argument("workload", choices=sorted(FRONTEND_KERNELS))
    p_compile.add_argument("--emit-python", action="store_true",
                           help="dump the specialized Python step-function "
                                "source the codegen backend binds at "
                                "run(codegen=True)")
    p_compile.add_argument("--stage", type=int, default=None, metavar="N",
                           help="show only stage N (0-based)")
    p_compile.add_argument("--json", action="store_true",
                           help="emit the machine-readable description")
    p_compile.set_defaults(func=cmd_compile)

    p_stats = sub.add_parser(
        "stats", help="full statistics for one run (tables or JSON)")
    _add_common(p_stats)
    p_stats.add_argument("--system", choices=SYSTEMS, default="fifer")
    p_stats.add_argument("--variant", choices=("decoupled", "merged"),
                         default="decoupled")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the machine-readable run manifest")
    p_stats.add_argument("--manifest-dir", default=None, metavar="DIR",
                         help="also write the manifest under DIR")
    p_stats.add_argument("--sanitize", action="store_true",
                         help="arm the simulation sanitizer during the run")
    p_stats.set_defaults(func=cmd_stats)

    p_lint = sub.add_parser(
        "lint", help="statically verify a workload's compiled pipeline")
    p_lint.add_argument("app", choices=sorted(APP_INPUTS) + ["all"],
                        help="workload to verify, or 'all'")
    p_lint.add_argument("input", nargs="?", default=None, metavar="INPUT",
                        help="input code (default: the app's first input)")
    p_lint.add_argument("--system", choices=("static", "fifer"),
                        default="fifer")
    p_lint.add_argument("--variant", choices=("decoupled", "merged"),
                        default="decoupled")
    p_lint.add_argument("--scale", type=float, default=None,
                        help="input scale (default: small; the pipeline "
                             "topology does not depend on it)")
    p_lint.add_argument("--seed", type=int, default=1)
    p_lint.add_argument("--json", action="store_true",
                        help="emit machine-readable findings and the "
                             "deadlock-freedom certificate")
    p_lint.add_argument("--suggest", action="store_true",
                        help="append info findings from the "
                             "auto-decoupling analyzer (inferred cut "
                             "points; see `repro advise`)")
    p_lint.set_defaults(func=cmd_lint)

    p_advise = sub.add_parser(
        "advise",
        help="infer load-split points from the whole-kernel dependence "
             "graph (auto-decoupling analyzer)")
    p_advise.add_argument("kernel",
                          choices=sorted(FRONTEND_KERNELS) + ["all"],
                          help="annotated kernel to analyze, or 'all'")
    p_advise.add_argument("--apply", action="store_true",
                          help="apply the top-ranked split, lower it "
                               "through the existing pipeline, and emit "
                               "the verification manifest (fingerprints, "
                               "describe digests, deadlock certificate)")
    p_advise.add_argument("--json", action="store_true",
                          help="emit the machine-readable advice or "
                               "apply manifest")
    p_advise.set_defaults(func=cmd_advise)

    p_profile = sub.add_parser(
        "profile", help="wait-for blame matrix, critical path, what-ifs")
    _add_common(p_profile)
    p_profile.add_argument("--system", choices=("static", "fifer"),
                           default="fifer")
    p_profile.add_argument("--variant", choices=("decoupled", "merged"),
                           default="decoupled")
    p_profile.add_argument("--what-if", action="append", default=[],
                           metavar="TARGET=PCT",
                           help="virtual-speedup estimate: a stage/DRM "
                                "base name, 'memory', or 'reconfig', and "
                                "the speedup in percent (repeatable, e.g. "
                                "--what-if bfs.fetch=50 --what-if "
                                "memory=100)")
    p_profile.add_argument("--validate", action="store_true",
                           help="re-simulate each what-if config and "
                                "report the prediction error")
    p_profile.add_argument("--format", choices=("text", "json", "folded"),
                           default="text",
                           help="text: tables; json: full profile "
                                "document; folded: flamegraph.pl/"
                                "speedscope folded stacks")
    p_profile.add_argument("--top", type=int, default=12, metavar="N",
                           help="critical-path segments to show (text)")
    p_profile.add_argument("--out", default=None, metavar="FILE",
                           help="write output here (default: stdout)")
    p_profile.set_defaults(func=cmd_profile)

    p_diff = sub.add_parser(
        "bench-diff", help="diff manifest dirs against a baseline")
    p_diff.add_argument("baseline", metavar="BASELINE",
                        help="baseline manifest directory (e.g. "
                             "benchmarks/results/history/baseline)")
    p_diff.add_argument("current", metavar="CURRENT",
                        help="freshly produced manifest directory")
    from repro.profiling import (DEFAULT_BLAME_TOL, DEFAULT_CYCLE_TOL,
                                 DEFAULT_WALL_RATIO)
    p_diff.add_argument("--cycle-tol", type=float,
                        default=DEFAULT_CYCLE_TOL, metavar="FRAC",
                        help="relative cycle drift that fails the diff "
                             f"(default {DEFAULT_CYCLE_TOL})")
    p_diff.add_argument("--blame-tol", type=float,
                        default=DEFAULT_BLAME_TOL, metavar="FRAC",
                        help="absolute blame-share drift that fails the "
                             f"diff (default {DEFAULT_BLAME_TOL})")
    p_diff.add_argument("--wall-ratio", type=float,
                        default=DEFAULT_WALL_RATIO, metavar="X",
                        help="wall-time ratio that warns (host-dependent; "
                             f"default {DEFAULT_WALL_RATIO})")
    p_diff.add_argument("--json", action="store_true",
                        help="emit machine-readable findings")
    p_diff.set_defaults(func=cmd_bench_diff)

    p_serve = sub.add_parser(
        "serve", help="run the experiment service (cached, deduplicated)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8177,
                         help="listen port (0 picks an ephemeral port)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result/artifact cache root (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="concurrent simulations (default: CPUs - 1)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one experiment spec to a running service")
    p_submit.add_argument("spec", metavar="SPEC.json",
                          help="JSON experiment spec file, or '-' for stdin")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8177)
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          metavar="SECONDS")
    p_submit.add_argument("--out", default=None, metavar="FILE",
                          help="write the manifest here (default: stdout)")
    p_submit.add_argument("--quiet", action="store_true",
                          help="suppress progress events on stderr")
    p_submit.set_defaults(func=cmd_submit)

    p_cache = sub.add_parser(
        "cache", help="inspect or prune the local experiment caches")
    p_cache.add_argument("action", choices=("stats", "gc"))
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache root (default: $REPRO_CACHE_DIR or "
                              "~/.cache/repro)")
    p_cache.add_argument("--all", action="store_true",
                         help="gc: also drop current-version compiled "
                              "artifacts, not just stale versions")
    p_cache.set_defaults(func=cmd_cache)

    p_report = sub.add_parser(
        "report", help="tabulate run manifests across runs")
    p_report.add_argument("dirs", nargs="+", metavar="DIR",
                          help="directories containing *.json manifests")
    p_report.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except EnvKnobError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout's reader went away (e.g. `repro cache stats | head`);
        # detach so the interpreter's shutdown flush cannot re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
