"""End-to-end engine checks on a tiny hand-built two-stage pipeline."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import (Program, PEProgram, StageSpec, System, STOP_VALUE)
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec


def _producer_dfg(out_queue):
    b = DFGBuilder("producer")
    counter = b.reg("i")
    one = b.const(1)
    nxt = b.add(counter, one)
    b.set_reg(counter, nxt)
    b.enq(out_queue, nxt)
    return b.finish()


def _consumer_dfg(in_queue):
    b = DFGBuilder("consumer")
    value = b.deq(in_queue)
    acc = b.reg("sum")
    total = b.add(acc, value)
    b.set_reg(acc, total)
    return b.finish()


def _build_program(n_items, n_pes, fifer):
    space = AddressSpace()
    memmap = MemoryMap()
    sums = np.zeros(1, dtype=np.int64)

    def producer(ctx):
        for i in range(n_items):
            yield from ctx.enq("toy.data", i)
        yield from ctx.enq("toy.data", STOP_VALUE, is_control=True)

    def consumer(ctx):
        while True:
            token = yield from ctx.deq("toy.data")
            if token.is_control:
                assert token.value == STOP_VALUE
                return
            sums[0] += token.value

    prod_spec = StageSpec("toy.producer", _producer_dfg("toy.data"), producer)
    cons_spec = StageSpec("toy.consumer", _consumer_dfg("toy.data"), consumer)
    data_queue = QueueSpec("toy.data")

    if fifer:
        pe0 = PEProgram(shard=0, queue_specs=[data_queue],
                        stage_specs=[prod_spec, cons_spec])
        pe_programs = [pe0]
    else:
        pe0 = PEProgram(shard=0, stage_specs=[prod_spec])
        pe1 = PEProgram(shard=0, queue_specs=[data_queue],
                        stage_specs=[cons_spec])
        pe_programs = [pe0, pe1]

    program = Program("toy", pe_programs, space, memmap,
                      result_fn=lambda: int(sums[0]))
    return program


def test_fifer_single_pe_pipeline():
    config = SystemConfig(n_pes=1)
    program = _build_program(500, 1, fifer=True)
    result = System(config, program, mode="fifer").run(max_cycles=1_000_000)
    assert result.result == sum(range(500))
    assert result.cycles > 0
    assert result.counters["reconfig_events"] >= 2  # at least both activations


def test_static_two_pe_pipeline():
    config = SystemConfig(n_pes=2)
    program = _build_program(500, 2, fifer=False)
    result = System(config, program, mode="static").run(max_cycles=1_000_000)
    assert result.result == sum(range(500))
    # The static pipeline never reconfigures.
    assert result.counters["reconfig"] == 0


def test_fifer_reconfigures_more_with_small_queues():
    small = _build_program(2000, 1, fifer=True)
    large = _build_program(2000, 1, fifer=True)
    r_small = System(SystemConfig(n_pes=1, queue_mem_bytes=512),
                     small, mode="fifer").run(max_cycles=5_000_000)
    r_large = System(SystemConfig(n_pes=1, queue_mem_bytes=16 * 1024),
                     large, mode="fifer").run(max_cycles=5_000_000)
    assert r_small.counters["reconfig_events"] > r_large.counters["reconfig_events"]
    assert r_small.result == r_large.result


def test_cpi_stack_accounts_all_cycles():
    config = SystemConfig(n_pes=1)
    program = _build_program(300, 1, fifer=True)
    result = System(config, program, mode="fifer").run(max_cycles=1_000_000)
    stack = result.merged_cpi_stack()
    assert sum(stack.values()) == pytest.approx(result.cycles * config.n_pes)
    assert stack["issued"] > 0
