"""Round-trip: printed pseudo-assembly parses back isomorphic.

``DataflowGraph.to_asm`` renders in the dialect of
:mod:`repro.ir.asmparse`; this suite proves the pair is lossless for
every stage DFG the repo can generate — all hand-written workloads, the
front-end-generated pipelines, and both variants — by comparing node
signatures (kind, attribute, operand edges). REG debug names are the
one documented exception (``reg %nK`` carries no name), so REG
attributes are masked on both sides.
"""

import pytest

from repro.config import SystemConfig
from repro.datasets.btree import BPlusTree
from repro.datasets.graphs import make_graph
from repro.datasets.matrices import make_matrix
from repro.frontend import FRONTEND_KERNELS, get_frontend
from repro.frontend.lower import _demo_graph
from repro.ir import parse_stage_asm
from repro.ir.dfg import OpKind
from repro.workloads import get_workload
from repro.workloads.common import shards_for_mode
from repro.workloads.spmm import SpMMWorkload, sample_rows_cols

_GRAPH_APPS = ("bfs", "cc", "prd", "radii", "sssp")


def _signature(dfg):
    return [(node.kind,
             None if node.kind is OpKind.REG else node.op.attr,
             tuple(op.node_id for op in node.operands))
            for node in dfg.nodes]


def _assert_roundtrips(dfg):
    text = dfg.to_asm()
    parsed = parse_stage_asm(dfg.name, text)
    assert _signature(parsed) == _signature(dfg), dfg.name
    assert parsed.input_queues() == dfg.input_queues()
    assert parsed.output_queues() == dfg.output_queues()


def _programs(name):
    config = SystemConfig()
    if name in _GRAPH_APPS:
        data = make_graph("Hu", scale=0.05, seed=1)
        module = get_workload(name)
        for variant in ("decoupled", "merged"):
            yield module.build(data, config, "fifer", variant)[0]
        return
    if name == "spmm":
        matrix = make_matrix("GE", scale=0.2, seed=1)
        rows, cols = sample_rows_cols(matrix, 8, 8)
        for variant in ("decoupled", "merged"):
            n_shards = shards_for_mode(config, "fifer",
                                       4 if variant == "decoupled" else 1)
            workload = SpMMWorkload(matrix, n_shards, rows, cols)
            yield workload.build_program(config, "fifer", variant)
        return
    if name == "silo":
        import numpy as np
        from repro.workloads import silo as silo_mod
        keys = np.arange(512, dtype=np.int64) * 3 + 1
        tree = BPlusTree(keys, keys * 7, fanout=8)
        ops = keys[:64].copy()
        silo_config = silo_mod.recommended_config(config)
        for variant in ("decoupled", "merged"):
            yield silo_mod.build(tree, ops, silo_config, "fifer", variant)[0]
        return
    raise ValueError(name)


@pytest.mark.parametrize("name", _GRAPH_APPS + ("spmm", "silo"))
def test_every_program_stage_roundtrips(name):
    seen = 0
    for program in _programs(name):
        for pe_program in program.pe_programs:
            for stage_spec in pe_program.stage_specs:
                _assert_roundtrips(stage_spec.dfg)
                seen += 1
    assert seen > 0


@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_described_asm_roundtrips(name):
    """The CLI's `repro compile` output is itself parseable."""
    for stage in get_frontend(name).describe()["stages"]:
        parsed = parse_stage_asm(stage["name"], stage["asm"])
        assert parsed.n_compute_ops == stage["compute_ops"]
        assert parsed.depth == stage["depth"]


def test_roundtrip_covers_all_node_kinds():
    """The workload sweep must exercise the whole printable op set —
    guards against a new OpKind missing its to_asm/parse pairing."""
    kinds = set()
    for name in _GRAPH_APPS + ("spmm", "silo"):
        for program in _programs(name):
            for pe_program in program.pe_programs:
                for stage_spec in pe_program.stage_specs:
                    kinds.update(n.kind for n in stage_spec.dfg.nodes)
    expected = {OpKind.DEQ, OpKind.ENQ, OpKind.CONST, OpKind.REG,
                OpKind.LEA, OpKind.LD, OpKind.ST, OpKind.SEL, OpKind.ADD,
                OpKind.CMP_LT, OpKind.CTRL}
    assert expected <= kinds


def test_demo_graph_stages_roundtrip():
    # Cheap direct pass over the generated builders (no simulation).
    for name in sorted(FRONTEND_KERNELS):
        workload = get_frontend(name).workload(_demo_graph(), 2)
        for builder in ("_s0_dfg", "_s1_dfg", "_s2_dfg", "_s3_dfg",
                        "_merged_dfg"):
            for shard in range(2):
                _assert_roundtrips(getattr(workload, builder)(shard))
