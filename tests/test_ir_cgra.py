"""Unit tests for the dataflow IR, mapper, and bitstream generation."""

import pytest

from repro.cgra import (FabricSpec, UnmappableStageError, map_dfg,
                        generate_bitstream, parse_bitstream)
from repro.cgra.bitstream import BitstreamError
from repro.config import FabricConfig
from repro.ir import DFGBuilder, DFGError, OpKind


def _fabric(**kwargs):
    return FabricSpec.from_config(FabricConfig(**kwargs))


def _bfs_enumerate_dfg():
    """The enumerate-neighbors stage of paper Fig. 6."""
    b = DFGBuilder("enumerate")
    e = b.deq("q_start")
    end = b.deq("q_end")
    base = b.const(0x1000)
    addr = b.lea(base, e)
    ngh = b.load(addr)
    b.enq("q_ngh", ngh)
    one = b.const(1)
    nxt = b.add(e, one)
    b.lt(nxt, end)
    return b.finish()


class TestDFG:
    def test_levels_are_topological(self):
        dfg = _bfs_enumerate_dfg()
        levels = dfg.levels()
        position = {}
        for i, level in enumerate(levels):
            for node in level:
                position[node.node_id] = i
        for node in dfg.nodes:
            for operand in node.operands:
                if node.kind is not OpKind.REG:
                    assert position[operand.node_id] < position[node.node_id]

    def test_input_output_queues(self):
        dfg = _bfs_enumerate_dfg()
        assert dfg.input_queues() == ["q_start", "q_end"]
        assert dfg.output_queues() == ["q_ngh"]

    def test_cycle_detection(self):
        b = DFGBuilder("cyclic")
        x = b.deq("in")
        y = b.add(x, x)
        # Force a combinational cycle by rewriting operands.
        y.operands = (y, x)
        with pytest.raises(DFGError):
            b.graph.levels()

    def test_reg_back_edge_is_legal(self):
        b = DFGBuilder("acc")
        x = b.deq("in")
        acc = b.reg("acc")
        total = b.add(acc, x)
        b.set_reg(acc, total)
        dfg = b.finish()
        assert dfg.depth >= 2

    def test_wrong_arity_rejected(self):
        b = DFGBuilder("bad")
        x = b.deq("in")
        with pytest.raises(DFGError):
            b.graph.add(b.graph.nodes[0].op.__class__(OpKind.ADD), x)

    def test_foreign_operand_rejected(self):
        b1 = DFGBuilder("one")
        x = b1.deq("in")
        b2 = DFGBuilder("two")
        with pytest.raises(DFGError):
            b2.add(x, x)

    def test_pseudo_assembly_renders(self):
        text = _bfs_enumerate_dfg().pseudo_assembly()
        assert "enumerate:" in text
        assert "ld" in text and "lea" in text

    def test_empty_graph_invalid(self):
        with pytest.raises(DFGError):
            DFGBuilder("empty").finish()


class TestMapper:
    def test_mapping_reports_shape(self):
        mapping = map_dfg(_bfs_enumerate_dfg(), _fabric())
        assert mapping.n_levels >= 3
        assert 1 <= mapping.lane_width <= 16
        assert mapping.replication >= 1
        assert mapping.depth_cycles == 2 * mapping.n_levels + 1

    def test_replication_fills_columns(self):
        mapping = map_dfg(_bfs_enumerate_dfg(), _fabric())
        assert mapping.lane_width * mapping.replication <= 16

    def test_fma_limits_replication(self):
        b = DFGBuilder("fp")
        x = b.deq("in")
        acc = b.reg("acc")
        total = b.fma(x, x, acc)
        b.set_reg(acc, total)
        b.enq("out", total)
        mapping = map_dfg(b.finish(), _fabric(fma_units=2))
        assert mapping.replication <= 2

    def test_too_many_fma_unmappable(self):
        b = DFGBuilder("fp")
        x = b.deq("in")
        y = b.fadd(x, x)
        for _ in range(5):
            y = b.fadd(y, y)
        b.enq("out", y)
        with pytest.raises(UnmappableStageError):
            map_dfg(b.finish(), _fabric(fma_units=4))

    def test_wide_level_unmappable(self):
        b = DFGBuilder("wide")
        x = b.deq("in")
        outs = [b.add(x, b.const(i)) for i in range(40)]
        for i, out in enumerate(outs):
            b.enq(f"o{i}", out)
        with pytest.raises(UnmappableStageError):
            map_dfg(b.finish(), _fabric())

    def test_deep_graph_folds_onto_rows(self):
        b = DFGBuilder("deep")
        x = b.deq("in")
        y = x
        for _ in range(12):  # 12 levels > 5 rows
            y = b.add(y, y)
        b.enq("out", y)
        mapping = map_dfg(b.finish(), _fabric())
        assert mapping.n_levels >= 12
        rows = {coords[0] for coords in mapping.placement.values()}
        assert rows <= set(range(5))

    def test_max_replication_cap(self):
        mapping = map_dfg(_bfs_enumerate_dfg(), _fabric(), max_replication=2)
        assert mapping.replication <= 2

    def test_placement_respects_capacity(self):
        mapping = map_dfg(_bfs_enumerate_dfg(), _fabric())
        assert len(set(mapping.placement.values())) == len(mapping.placement)


class TestBitstream:
    def test_round_trip(self):
        dfg = _bfs_enumerate_dfg()
        fabric = _fabric()
        mapping = map_dfg(dfg, fabric)
        data = generate_bitstream(dfg, mapping)
        assert len(data) == fabric.config_bytes
        info, cells = parse_bitstream(data, fabric)
        assert info["replication"] == mapping.replication
        assert info["lane_width"] == mapping.lane_width
        assert info["n_levels"] == mapping.n_levels
        # Every placed compute op appears in the parsed cells.
        assert len(cells) == len(mapping.placement)
        kinds = {kind for kind, _ in cells.values()}
        assert OpKind.LD in kinds and OpKind.LEA in kinds

    def test_checksum_detects_corruption(self):
        dfg = _bfs_enumerate_dfg()
        fabric = _fabric()
        data = bytearray(generate_bitstream(dfg, map_dfg(dfg, fabric)))
        data[20] ^= 0xFF
        with pytest.raises(BitstreamError):
            parse_bitstream(bytes(data), fabric)

    def test_wrong_length_rejected(self):
        with pytest.raises(BitstreamError):
            parse_bitstream(b"\x00" * 100, _fabric())

    def test_operand_routing_encoded(self):
        dfg = _bfs_enumerate_dfg()
        fabric = _fabric()
        mapping = map_dfg(dfg, fabric)
        _, cells = parse_bitstream(generate_bitstream(dfg, mapping), fabric)
        # The LD's operand reference points at the LEA's cell.
        ld_cell = next(v for v in cells.values() if v[0] is OpKind.LD)
        lea_coords = next(coords for coords, v in cells.items()
                          if v[0] is OpKind.LEA)
        assert lea_coords in ld_cell[1]


class TestMappingRender:
    def test_render_shows_geometry(self):
        dfg = _bfs_enumerate_dfg()
        mapping = map_dfg(dfg, _fabric())
        text = mapping.render(dfg)
        lines = text.splitlines()
        assert "SIMD" in lines[0]
        assert len(lines) == 1 + 5  # header + 5 fabric rows
        assert "lea" in text and "ld" in text

    def test_render_marks_replicated_lanes(self):
        dfg = _bfs_enumerate_dfg()
        mapping = map_dfg(dfg, _fabric())
        if mapping.replication > 1:
            assert "rep" in mapping.render(dfg)

    def test_render_without_dfg_uses_node_ids(self):
        dfg = _bfs_enumerate_dfg()
        mapping = map_dfg(dfg, _fabric())
        assert "n" in mapping.render()
