"""Pseudo-assembly frontend for stage dataflow graphs.

The paper's toolflow (Fig. 5) lowers each annotated stage to LLVM IR,
then extracts a dataflow graph; Fig. 6 shows the intermediate
pseudo-assembly for BFS's enumerate-neighbors stage. This module parses
that pseudo-assembly dialect directly into a
:class:`~repro.ir.dfg.DataflowGraph`, so stages can be written as text:

    ; enumerate neighbors (paper Fig. 6)
    deq   %e,    $q_start
    deq   %end,  $q_end
    mov   %base, 4096
    lea   %addr, %base, %e
    ld    %ngh,  %addr
    enq   $q_ngh, %ngh
    addi  %nxt,  %e, 1
    blt   %nxt,  %end

Syntax: one instruction per line; ``%name`` are SSA values, ``$name``
are queues, bare tokens are immediates (decimal, 0x hex, or floating
point); ``;`` or ``#`` start comments. ``mov`` with an immediate is a
configuration-time constant; ``reg %r`` declares a loop-carried
register whose input is connected with ``setreg %r, %value``; ``lea``
accepts an optional fourth scale immediate (default 8); ``ctrl``
steers a control value. :meth:`~repro.ir.dfg.DataflowGraph.to_asm`
prints this dialect, and parsing its output reconstructs an isomorphic
graph (the round-trip is tested for every workload stage).
"""

from __future__ import annotations

from repro.ir.builder import DFGBuilder
from repro.ir.dfg import DataflowGraph


class AsmParseError(Exception):
    """Syntax or semantic error in stage pseudo-assembly."""


# mnemonic -> (DFGBuilder method, number of value operands)
_BINARY_OPS = {
    "add": "add", "sub": "sub", "mul": "mul",
    "and": "and_", "or": "or_", "xor": "xor",
    "shl": "shl", "shr": "shr",
    "cmplt": "lt", "cmpeq": "eq",
    "fadd": "fadd", "fmul": "fmul",
}

# Branch-style comparisons: two sources, optional branch-target label
# (ignored — control flow becomes predication on the fabric, Fig. 6).
_BRANCH_OPS = {"blt": "lt", "beq": "eq"}


def parse_stage_asm(name: str, text: str) -> DataflowGraph:
    """Parse pseudo-assembly into a validated dataflow graph."""
    builder = DFGBuilder(name)
    values: dict = {}

    def value(token: str, line_no: int):
        if token.startswith("%"):
            try:
                return values[token]
            except KeyError:
                raise AsmParseError(
                    f"{name}:{line_no}: use of undefined value {token}"
                    ) from None
        try:
            literal = int(token, 0)
        except ValueError:
            try:
                literal = float(token)
            except ValueError:
                raise AsmParseError(
                    f"{name}:{line_no}: expected %value or immediate, got "
                    f"{token!r}") from None
        return builder.const(literal)

    def define(token: str, node, line_no: int):
        if not token.startswith("%"):
            raise AsmParseError(
                f"{name}:{line_no}: destination must be a %value, got "
                f"{token!r}")
        values[token] = node

    def queue(token: str, line_no: int) -> str:
        if not token.startswith("$"):
            raise AsmParseError(
                f"{name}:{line_no}: expected $queue, got {token!r}")
        return token[1:]

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        parts = [p for p in line.replace(",", " ").split() if p]
        op, args = parts[0].lower(), parts[1:]

        def arity(n: int):
            if len(args) != n:
                raise AsmParseError(
                    f"{name}:{line_no}: {op} takes {n} operands, got "
                    f"{len(args)}")

        if op == "deq":
            arity(2)
            define(args[0], builder.deq(queue(args[1], line_no)), line_no)
        elif op == "enq":
            arity(2)
            builder.enq(queue(args[0], line_no), value(args[1], line_no))
        elif op == "mov":
            arity(2)
            define(args[0], value(args[1], line_no), line_no)
        elif op == "lea":
            if len(args) not in (3, 4):
                raise AsmParseError(
                    f"{name}:{line_no}: lea takes a destination, base, "
                    f"index, and optional scale, got {len(args)} operands")
            if len(args) == 4:
                try:
                    scale = int(args[3], 0)
                except ValueError:
                    raise AsmParseError(
                        f"{name}:{line_no}: lea scale must be an integer "
                        f"immediate, got {args[3]!r}") from None
            else:
                scale = 8
            define(args[0], builder.lea(value(args[1], line_no),
                                        value(args[2], line_no),
                                        scale=scale), line_no)
        elif op == "ld":
            arity(2)
            define(args[0], builder.load(value(args[1], line_no)), line_no)
        elif op == "st":
            arity(2)
            builder.store(value(args[0], line_no), value(args[1], line_no))
        elif op in ("addi", "subi", "muli"):
            arity(3)
            method = {"addi": "add", "subi": "sub", "muli": "mul"}[op]
            define(args[0], getattr(builder, method)(
                value(args[1], line_no), value(args[2], line_no)), line_no)
        elif op in _BRANCH_OPS:
            if len(args) not in (2, 3):
                raise AsmParseError(
                    f"{name}:{line_no}: {op} takes 2 sources and an "
                    f"optional label, got {len(args)} operands")
            getattr(builder, _BRANCH_OPS[op])(
                value(args[0], line_no), value(args[1], line_no))
        elif op in _BINARY_OPS:
            arity(3)
            define(args[0], getattr(builder, _BINARY_OPS[op])(
                value(args[1], line_no), value(args[2], line_no)), line_no)
        elif op == "sel":
            arity(4)
            define(args[0], builder.sel(value(args[1], line_no),
                                        value(args[2], line_no),
                                        value(args[3], line_no)), line_no)
        elif op == "fma":
            arity(4)
            define(args[0], builder.fma(value(args[1], line_no),
                                        value(args[2], line_no),
                                        value(args[3], line_no)), line_no)
        elif op == "ctrl":
            arity(2)
            define(args[0], builder.ctrl(value(args[1], line_no)), line_no)
        elif op == "reg":
            arity(1)
            define(args[0], builder.reg(args[0][1:]), line_no)
        elif op == "setreg":
            arity(2)
            target = values.get(args[0])
            if target is None:
                raise AsmParseError(
                    f"{name}:{line_no}: setreg of undeclared register "
                    f"{args[0]}")
            builder.set_reg(target, value(args[1], line_no))
        else:
            raise AsmParseError(
                f"{name}:{line_no}: unknown mnemonic {op!r}")

    return builder.finish()
