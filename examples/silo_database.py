#!/usr/bin/env python3
"""Silo: in-memory database B+tree lookups under YCSB-C.

Builds a B+tree index, generates a zipfian read-only workload (YCSB-C,
paper Sec. 7.2), and runs the lookup pipeline of Fig. 12(b) — with its
traverse-internal-node cycle — on Fifer and the static pipeline,
reporting lookup throughput and the effect of the scaled-down 4 KB
queue memory.

Run:  python examples/silo_database.py
"""

import numpy as np

from repro import System, SystemConfig
from repro.datasets.btree import BPlusTree
from repro.datasets.ycsb import zipfian_keys
from repro.harness import format_table
from repro.workloads import silo


def main():
    n_records = 50_000
    n_ops = 4_000
    keys = np.arange(n_records, dtype=np.int64) * 3 + 1
    tree = BPlusTree(keys, keys * 7, fanout=8)
    ops = keys[zipfian_keys(n_records, n_ops, seed=11)].copy()
    ops[::8] += 1  # ~12% of lookups miss
    golden = silo.silo_reference(tree, ops)
    print(f"B+tree: {tree.n_keys} keys, depth {tree.depth}, "
          f"{tree.n_nodes} nodes ({tree.total_bytes / 1024:.0f} KB)")
    print(f"workload: {n_ops} zipfian lookups, "
          f"{golden[0]} hits (checksum {golden[1]:#x})")

    rows = []
    config = silo.recommended_config(SystemConfig())  # 4 KB queue memory
    for mode in ("static", "fifer"):
        program, workload = silo.build(tree, ops, config, mode)
        result = System(config, program, mode=mode).run()
        assert result.result == golden, "lookup results mismatch!"
        rows.append([mode, f"{result.cycles:,.0f}",
                     f"{1000 * n_ops / result.cycles:.1f}",
                     f"{workload.lookup_window[0]}"])
    print()
    print(format_table(
        ["system", "cycles", "lookups / kcycle", "in-flight window"],
        rows, title="YCSB-C lookups, 4 KB queue memory (paper Sec. 7.2)"))


if __name__ == "__main__":
    main()
