"""Comparison systems: out-of-order cores (serial and 4-core multicore).

The static-spatial-pipeline baseline is ``System(..., mode="static")``
in :mod:`repro.core.system`; this package holds the general-purpose-core
models (paper Sec. 7.1: Skylake-like, 6-wide OOO issue, 32 KB L1,
256 KB L2, 2 MB LLC/core).
"""

from repro.baselines.ooo import OOOMachine, OOOResult, run_ooo

__all__ = ["OOOMachine", "OOOResult", "run_ooo"]
