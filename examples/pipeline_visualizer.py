#!/usr/bin/env python3
"""Visualize dynamic temporal pipelining (paper Fig. 2(c)/Fig. 8).

Runs BFS on Fifer with activation tracing enabled and renders each PE's
timeline as an ASCII Gantt chart: every letter is a stage configuration
resident on the fabric, and every boundary is a reconfiguration. The
chart makes the paper's core idea visible — one PE's fabric hosting all
four pipeline stages over time, with cycles allocated in proportion to
available work.

Run:  python examples/pipeline_visualizer.py
"""

from repro import System, SystemConfig
from repro.datasets.graphs import power_law_graph
from repro.stats.trace import ActivationTracer
from repro.workloads import bfs


def main():
    config = SystemConfig()
    graph = power_law_graph(1200, 8.0, seed=9)
    program, _ = bfs.build(graph, config, mode="fifer")
    system = System(config, program, mode="fifer")
    tracer = ActivationTracer().attach(system)
    result = system.run()

    print(f"BFS on 16-PE Fifer: {result.cycles:,.0f} cycles, "
          f"{len(tracer.events)} stage activations "
          f"({result.avg_reconfig_cycles:.1f}-cycle average "
          f"reconfiguration)\n")
    print(tracer.gantt(result.cycles, width=88, max_pes=4))

    shares = tracer.stage_cycle_share(result.cycles)
    by_kind = {}
    for stage, cycles in shares.items():
        kind = stage.split("@")[0]
        by_kind[kind] = by_kind.get(kind, 0.0) + cycles
    total = sum(by_kind.values())
    print("\nfabric cycles by stage type (the scheduler allocates "
          "residence in proportion to work):")
    for kind, cycles in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(40 * cycles / total)
        print(f"  {kind:<14} {bar} {cycles / total:.1%}")


if __name__ == "__main__":
    main()
