"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (BPlusTree, CSRGraph,
                            TABLE3_GRAPHS, TABLE4_MATRICES, grid_graph,
                            make_graph, make_matrix, power_law_graph,
                            random_sparse_matrix, uniform_random_graph,
                            zipfian_keys)


class TestGraphGenerators:
    def test_uniform_degree_near_target(self):
        g = uniform_random_graph(2000, 6.0, seed=1)
        assert g.avg_degree == pytest.approx(6.0, rel=0.15)

    def test_power_law_is_skewed(self):
        g = power_law_graph(2000, 8.0, seed=1)
        degrees = np.diff(g.offsets)
        assert degrees.max() > 6 * degrees.mean()

    def test_uniform_is_not_skewed(self):
        g = uniform_random_graph(2000, 8.0, seed=1)
        degrees = np.diff(g.offsets)
        assert degrees.max() < 6 * degrees.mean()

    def test_graphs_are_symmetric(self):
        g = power_law_graph(300, 5.0, seed=2)
        edges = set()
        for v in range(g.n_vertices):
            for ngh in g.neighbors_of(v):
                edges.add((v, int(ngh)))
        assert all((b, a) in edges for a, b in edges)

    def test_no_self_loops_or_duplicates(self):
        g = uniform_random_graph(500, 6.0, seed=3)
        for v in range(g.n_vertices):
            nghs = list(g.neighbors_of(v))
            assert v not in nghs
            assert len(nghs) == len(set(nghs))

    def test_grid_structure(self):
        g = grid_graph(5, 4)
        assert g.n_vertices == 20
        # Interior vertex has 4 neighbors; corner has 2.
        assert g.out_degree(6) == 4
        assert g.out_degree(0) == 2

    def test_grid_keep_reduces_degree(self):
        full = grid_graph(30, 30)
        sparse = grid_graph(30, 30, keep=0.5, seed=1)
        assert sparse.n_edges < full.n_edges

    def test_table3_registry_complete(self):
        assert set(TABLE3_GRAPHS) == {"Hu", "Dy", "Ci", "In", "Rd"}
        for code in TABLE3_GRAPHS:
            g = make_graph(code, scale=0.1)
            g.validate()
            assert g.n_vertices > 50

    def test_validate_catches_bad_offsets(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1], dtype=np.int64),
                     np.array([0, 1], dtype=np.int64)).validate()

    def test_validate_catches_bad_neighbors(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1], dtype=np.int64),
                     np.array([5], dtype=np.int64)).validate()


class TestMatrixGenerators:
    def test_density_near_target(self):
        m = random_sparse_matrix(500, 10.0, seed=1)
        assert m.avg_nnz_per_row == pytest.approx(10.0, rel=0.15)

    def test_csr_csc_views_agree(self):
        m = random_sparse_matrix(60, 5.0, seed=2)
        dense = m.to_dense()
        rebuilt = np.zeros_like(dense)
        for j in range(m.n):
            idx, val = m.col(j)
            rebuilt[idx, j] = val
        np.testing.assert_allclose(dense, rebuilt)

    def test_indices_sorted_within_row_and_col(self):
        m = random_sparse_matrix(100, 8.0, seed=3)
        for i in range(m.n):
            idx, _ = m.row(i)
            assert np.all(np.diff(idx) > 0)
            cidx, _ = m.col(i)
            assert np.all(np.diff(cidx) > 0)

    def test_table4_registry_complete(self):
        assert set(TABLE4_MATRICES) == {"FS", "Gr", "GE", "EM", "FD", "St"}
        for code in TABLE4_MATRICES:
            m = make_matrix(code, scale=0.3)
            assert m.nnz > 0


class TestBPlusTree:
    def _tree(self, n=1000, fanout=8):
        keys = np.arange(n, dtype=np.int64) * 2
        return BPlusTree(keys, keys * 10, fanout=fanout), keys

    def test_lookup_finds_all_keys(self):
        tree, keys = self._tree()
        for key in keys[::37]:
            assert tree.lookup(int(key)) == key * 10

    def test_lookup_misses(self):
        tree, keys = self._tree()
        assert tree.lookup(1) is None       # odd keys absent
        assert tree.lookup(-5) is None
        assert tree.lookup(10 ** 9) is None

    def test_depth_grows_logarithmically(self):
        small, _ = self._tree(n=8)
        large, _ = self._tree(n=10_000)
        assert small.depth < large.depth
        assert large.depth <= 6

    def test_lookup_path_root_to_leaf(self):
        tree, keys = self._tree()
        path = tree.lookup_path(int(keys[500]))
        assert path[0] == tree.root_id
        assert len(path) == tree.depth
        assert tree.nodes[path[-1]].is_leaf

    def test_step_matches_lookup(self):
        tree, keys = self._tree()
        key = int(keys[123])
        node_id = tree.root_id
        is_leaf = tree.nodes[node_id].is_leaf
        while not is_leaf:
            node_id, is_leaf = tree.step(node_id, key)
        assert tree.leaf_lookup(node_id, key) == key * 10

    def test_node_addressing_disjoint(self):
        tree, _ = self._tree(n=100)
        offsets = {tree.node_offset(i) for i in range(tree.n_nodes)}
        assert len(offsets) == tree.n_nodes
        assert tree.total_bytes == tree.n_nodes * tree.node_bytes

    def test_single_leaf_tree(self):
        tree = BPlusTree([1, 2, 3], [10, 20, 30], fanout=8)
        assert tree.depth == 1
        assert tree.lookup(2) == 20

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree([], [], fanout=8)
        with pytest.raises(ValueError):
            BPlusTree([3, 1], [1, 2], fanout=8)  # not sorted
        with pytest.raises(ValueError):
            BPlusTree([1, 2], [1], fanout=8)     # length mismatch
        with pytest.raises(ValueError):
            BPlusTree([1], [1], fanout=1)


class TestYCSB:
    def test_zipfian_is_skewed(self):
        draws = zipfian_keys(10_000, 50_000, seed=1)
        _, counts = np.unique(draws, return_counts=True)
        top = np.sort(counts)[::-1]
        # The hottest keys absorb far more than their uniform share.
        assert top[0] > 20 * (50_000 / 10_000)

    def test_keys_in_range(self):
        draws = zipfian_keys(100, 1000, seed=2)
        assert draws.min() >= 0 and draws.max() < 100

    def test_scramble_spreads_hot_keys(self):
        raw = zipfian_keys(1000, 10_000, seed=3, scramble=False)
        scrambled = zipfian_keys(1000, 10_000, seed=3, scramble=True)
        # Unscrambled hot keys cluster at low ids; scrambled do not.
        assert raw.mean() < scrambled.mean()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipfian_keys(0, 10)
        with pytest.raises(ValueError):
            zipfian_keys(10, 10, theta=1.5)
