"""Layout and assembly tests for SpMM and Silo programs (the non-graph
pipelines), mirroring test_graph_chain_internals for the graph chain."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.datasets.btree import BPlusTree
from repro.datasets.matrices import random_sparse_matrix
from repro.workloads import silo
from repro.workloads.spmm import SpMMWorkload, sample_rows_cols


@pytest.fixture
def matrix():
    return random_sparse_matrix(120, 5.0, seed=50)


class TestSpMMLayout:
    def _workload(self, matrix, n_shards=4):
        rows, cols = sample_rows_cols(matrix, 24, 24, seed=1)
        return SpMMWorkload(matrix, n_shards, rows, cols)

    def test_shard_rows_are_contiguous_blocks(self, matrix):
        workload = self._workload(matrix)
        flattened = np.concatenate(workload.shard_rows)
        np.testing.assert_array_equal(flattened, workload.rows)
        # Blocks are balanced within one row.
        sizes = [len(block) for block in workload.shard_rows]
        assert max(sizes) - min(sizes) <= 1

    def test_fifer_layout(self, matrix):
        workload = self._workload(matrix)
        program = workload.build_program(SystemConfig(n_pes=4), "fifer")
        for pe_program in program.pe_programs:
            assert len(pe_program.stage_specs) == 4
            assert len(pe_program.drm_specs) == 3
            assert len(pe_program.queue_specs) == 9

    def test_static_layout(self, matrix):
        workload = self._workload(matrix)
        program = workload.build_program(SystemConfig(n_pes=16), "static")
        assert program.n_pes == 16
        assert all(len(p.stage_specs) == 1 for p in program.pe_programs)

    def test_merged_layout_is_single_stage(self, matrix):
        workload = self._workload(matrix, n_shards=16)
        program = workload.build_program(SystemConfig(n_pes=16), "fifer",
                                         variant="merged")
        assert all(len(p.stage_specs) == 1 for p in program.pe_programs)
        assert all(not p.drm_specs for p in program.pe_programs)

    def test_unknown_mode_rejected(self, matrix):
        workload = self._workload(matrix)
        with pytest.raises(ValueError):
            workload.build_program(SystemConfig(n_pes=4), "merged")

    def test_pair_enumeration_covers_all_samples(self, matrix):
        workload = self._workload(matrix)
        pairs = [pair for shard in range(4)
                 for pair in workload._pairs(shard)]
        assert len(pairs) == len(workload.rows) * len(workload.cols)
        assert len(set(pairs)) == len(pairs)

    def test_accumulator_stage_capped_by_fma_units(self, matrix):
        from repro.core import System
        workload = self._workload(matrix, n_shards=16)
        program = workload.build_program(SystemConfig(), "fifer")
        system = System(SystemConfig(), program, mode="fifer")
        mapping = system.mappings["spmm.accumulate@0"]
        assert mapping.n_fma_ops == 1
        assert mapping.replication <= 4  # 4 FMA units per fabric


class TestSiloLayout:
    def _workload(self, n_shards=4):
        keys = np.arange(2000, dtype=np.int64) * 2
        tree = BPlusTree(keys, keys, fanout=8)
        ops = keys[::5]
        return silo.SiloWorkload(tree, ops, n_shards), tree, ops

    def test_ops_striped_across_shards(self):
        workload, tree, ops = self._workload()
        rebuilt = np.concatenate(workload.shard_keys)
        assert sorted(rebuilt) == sorted(ops)
        sizes = [len(k) for k in workload.shard_keys]
        assert max(sizes) - min(sizes) <= 1

    def test_trav_queue_has_two_producers(self):
        workload, _, _ = self._workload()
        program = workload.build_program(
            silo.recommended_config(SystemConfig(n_pes=4)), "fifer")
        trav = next(spec for pe in program.pe_programs
                    for spec in pe.queue_specs
                    if spec.name == "silo.trav@0")
        assert set(trav.producers) == {"silo.query@0", "silo.traverse@0"}

    def test_node_addresses_fall_in_tree_region(self):
        workload, tree, _ = self._workload()
        base = workload.tree_ref.base
        for node_id in (0, tree.root_id, tree.n_nodes - 1):
            addr = workload.node_addr(node_id)
            assert base <= addr < base + tree.total_bytes

    def test_post_build_only_for_decoupled(self):
        workload, tree, ops = self._workload()
        config = silo.recommended_config(SystemConfig(n_pes=4))
        assert workload.build_program(config, "fifer",
                                      "decoupled").post_build is not None
        workload2 = silo.SiloWorkload(tree, ops, 4)
        assert workload2.build_program(config, "fifer",
                                       "merged").post_build is None

    def test_zero_array_is_read_only(self):
        from repro.workloads.silo import _ZeroArray
        array = _ZeroArray(10)
        assert array[5] == 0
        assert len(array) == 10
        with pytest.raises(IndexError):
            array[10]
        with pytest.raises(TypeError):
            array[0] = 1
