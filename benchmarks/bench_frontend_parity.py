"""Front-end parity benchmark: generated vs hand-written pipelines.

The decoupling front-end (paper Sec. 4, ``repro.frontend``) lowers an
annotated kernel onto the same pipeline skeleton the hand-written
workloads use, so a ported workload must cost *exactly* the same
simulated cycles — any drift means the generated DFGs, queue widths, or
request streams diverged. This benchmark runs the BFS and CC pairs on
the Fifer system and asserts cycle-for-cycle equality, and records the
front-end's own cost: compilation wall time (analysis + lint) and
per-workload lowering time, written to
``benchmarks/results/frontend_parity.txt``.
"""

import time

from bench_common import SCALE_MULT, emit
from repro.config import SystemConfig
from repro.core import System
from repro.frontend import compile_kernel
from repro.frontend.kernels import FRONTEND_KERNELS
from repro.harness import format_table, prepare_input, run_experiment
from repro.harness.run import default_scale

# BFS and CC have hand-written counterparts; SSSP is frontend-only and
# is validated against its golden reference in the test suite instead.
_PORTED = ("bfs", "cc")
_INPUT = "Hu"


def _compile_times():
    """Wall time of the full front-end analysis, per kernel."""
    times = {}
    for name, factory in sorted(FRONTEND_KERNELS.items()):
        start = time.perf_counter()
        pipeline = compile_kernel(factory())
        times[name] = time.perf_counter() - start
        assert pipeline.name == name
    return times


def _generated_cycles(name, prepared, config):
    program, _ = compile_kernel(FRONTEND_KERNELS[name]()).build(
        prepared.data, config, "fifer")
    start = time.perf_counter()
    raw = System(config, program, mode="fifer").run()
    return float(raw.cycles), time.perf_counter() - start


def run_frontend_parity():
    config = SystemConfig()
    compile_times = _compile_times()
    rows, parity = [], {}
    for name in _PORTED:
        scale = default_scale(name, _INPUT) * SCALE_MULT
        prepared = prepare_input(name, _INPUT, scale=scale)
        hand = run_experiment(name, _INPUT, "fifer", prepared=prepared)
        gen_cycles, _sim_time = _generated_cycles(name, prepared, config)
        assert gen_cycles == hand.cycles, (
            f"{name}: generated pipeline took {gen_cycles} cycles, "
            f"hand-written took {hand.cycles}")
        parity[name] = (gen_cycles, hand.cycles)
        rows.append([name, _INPUT, f"{hand.cycles:.0f}",
                     f"{gen_cycles:.0f}", "yes",
                     f"{compile_times[name] * 1e3:.2f}"])
    for name in sorted(set(FRONTEND_KERNELS) - set(_PORTED)):
        rows.append([name, "-", "-", "-", "frontend-only",
                     f"{compile_times[name] * 1e3:.2f}"])
    table = format_table(
        ["kernel", "input", "hand-written (cyc)", "generated (cyc)",
         "identical", "compile time (ms)"],
        rows,
        title=("front-end parity: generated pipelines must match the "
               "hand-written cycle counts exactly (fifer, decoupled)"))
    emit("frontend_parity", table)
    return parity


def test_frontend_parity(benchmark):
    parity = benchmark.pedantic(run_frontend_parity, rounds=1, iterations=1)
    assert parity
    for name, (gen, hand) in parity.items():
        assert gen == hand, name
