"""Property-based end-to-end tests of the simulated systems."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core import PEProgram, Program, StageSpec, System, STOP_VALUE
from repro.datasets.graphs import power_law_graph, uniform_random_graph
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec
from repro.workloads import bfs, cc

_settings = settings(max_examples=10, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.data_too_large])


def _passthrough_program(payloads):
    space = AddressSpace()
    received = []

    def producer(ctx):
        for value, is_control in payloads:
            yield from ctx.enq("pt.q", value, is_control=is_control)
        yield from ctx.enq("pt.q", STOP_VALUE, is_control=True)

    def consumer(ctx):
        while True:
            token = yield from ctx.deq("pt.q")
            if token.is_control and token.value == STOP_VALUE:
                return
            received.append((token.value, token.is_control))

    b = DFGBuilder("pt.src")
    reg = b.reg("i")
    b.set_reg(reg, b.add(reg, b.const(1)))
    b.enq("pt.q", reg)
    src = b.finish()
    b = DFGBuilder("pt.snk")
    x = b.deq("pt.q")
    b.add(x, x)
    snk = b.finish()
    pe = PEProgram(shard=0,
                   queue_specs=[QueueSpec("pt.q")],
                   stage_specs=[StageSpec("pt.src", src, producer),
                                StageSpec("pt.snk", snk, consumer)])
    return Program("pt", [pe], space, MemoryMap(),
                   result_fn=lambda: list(received))


@given(st.lists(st.tuples(st.integers(-1000, 1000), st.booleans()),
                max_size=120),
       st.sampled_from([256, 1024, 16 * 1024]))
@_settings
def test_tokens_arrive_in_order_any_queue_size(payloads, queue_bytes):
    """Whatever mix of data and control flows through a temporal
    pipeline, order and the control bit are preserved."""
    payloads = [(v, c) for v, c in payloads if v != STOP_VALUE]
    program = _passthrough_program(payloads)
    config = SystemConfig(n_pes=1, queue_mem_bytes=queue_bytes)
    result = System(config, program, mode="fifer").run(max_cycles=5e6)
    assert result.result == payloads


@given(st.integers(min_value=2, max_value=120),
       st.floats(min_value=1.0, max_value=8.0),
       st.integers(min_value=0, max_value=10 ** 6))
@_settings
def test_fifer_bfs_matches_reference_on_random_graphs(n, deg, seed):
    graph = power_law_graph(n, deg, seed=seed)
    config = SystemConfig()
    program, _ = bfs.build(graph, config, "fifer")
    result = System(config, program, mode="fifer").run(max_cycles=5e7)
    np.testing.assert_array_equal(result.result,
                                  bfs.bfs_reference(graph, 0))


@given(st.integers(min_value=2, max_value=80),
       st.integers(min_value=0, max_value=10 ** 6))
@_settings
def test_static_and_fifer_agree_functionally(n, seed):
    """Both CGRA systems compute identical CC labels on any graph."""
    graph = uniform_random_graph(n, 4.0, seed=seed)
    config = SystemConfig()
    results = {}
    for mode in ("static", "fifer"):
        program, _ = cc.build(graph, config, mode)
        results[mode] = System(config, program, mode=mode).run(
            max_cycles=5e7).result
    np.testing.assert_array_equal(results["static"], results["fifer"])
    np.testing.assert_array_equal(results["fifer"], cc.cc_reference(graph))


@given(st.integers(min_value=16, max_value=64),
       st.integers(min_value=0, max_value=100))
@_settings
def test_cycle_accounting_always_balances(n, seed):
    """For any run, each PE's CPI buckets sum to the total cycles."""
    graph = power_law_graph(n, 4.0, seed=seed)
    config = SystemConfig()
    program, _ = bfs.build(graph, config, "fifer")
    result = System(config, program, mode="fifer").run(max_cycles=5e7)
    for stack in result.cpi_stacks():
        # Exact up to the final quantum's overshoot (one request's cost;
        # earlier overshoots are repaid from subsequent quanta).
        assert sum(stack.values()) <= result.cycles + 2.0
        assert sum(stack.values()) >= result.cycles - 1e-6
