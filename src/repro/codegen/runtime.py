"""Compile, cache, and bind generated step-functions.

Three layers keep warm paths free of source generation:

1. the process-global :class:`~repro.cache.artifacts.ArtifactCache`
   stores generated *source text* under the ``codegen`` kind (JSON on
   disk, ``code_version``-namespaced) — shared by the experiment
   server, its pool workers, and CLI runs via ``REPRO_CACHE_DIR``;
2. a process-local map caches the executed module's ``make_step``
   factory per shape key, so repeat binds skip parsing and ``exec``;
3. binding itself (one ``make_step`` call) is per stage-instance and
   cheap — it resolves queues and hook methods into closure locals.

``emitted_count()`` exposes how many times source was actually
generated, so tests can prove a warm run performs zero generation.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.artifacts import ArtifactCache, get_artifact_cache
from repro.codegen.emit import StageShape, stage_source

#: Process-local factory cache: shape key -> the generated module's
#: make_step function (compile + exec happen once per shape).
_FACTORY: dict = {}

#: How many times stage_source() actually ran in this process.
_EMITTED = 0


def emitted_count() -> int:
    """Number of source-generation events in this process (test hook)."""
    return _EMITTED


def source_for(shape: StageShape,
               cache: Optional[ArtifactCache] = None) -> str:
    """The generated source for ``shape``, via the artifact cache.

    A hit (memory or disk) returns the cached text without invoking the
    emitter; a miss generates, stores, and counts one emission.
    """
    global _EMITTED
    if cache is None:
        cache = get_artifact_cache()
    key = shape.key()
    entry = cache.get("codegen", key)
    if entry is not None:
        return entry["source"]
    source = stage_source(shape)
    _EMITTED += 1
    cache.put("codegen", key, {
        "source": source,
        "role": shape.role,
        "simple_edges": shape.simple_edges,
        "trivial_vp": shape.trivial_vp,
    })
    return source


def _factory_for(shape: StageShape,
                 cache: Optional[ArtifactCache] = None) -> Callable:
    key = shape.key()
    factory = _FACTORY.get(key)
    if factory is None:
        source = source_for(shape, cache)
        code = compile(source, f"<repro.codegen:{shape.role}>", "exec")
        namespace: dict = {}
        exec(code, namespace)
        factory = namespace["make_step"]
        _FACTORY[key] = factory
    return factory


def bind_stage(pe, stage, cache: Optional[ArtifactCache] = None) -> bool:
    """Attach a specialized step-function to ``stage`` on ``pe``.

    Returns False (leaving the interpreted coroutine path in charge)
    when the stage carries no codegen descriptor or when the
    descriptor's queue contract disagrees with the stage's DFG — the
    defensive fallback the tentpole requires rather than a hard error.
    """
    cg = getattr(stage.spec, "codegen", None)
    if cg is None:
        return False
    shape, bindings = cg
    consumed, produced = stage.spec.dfg.queue_signature()
    if (bindings.get("consumed") != consumed
            or bindings.get("produced") != produced):
        return False
    stage.step_fn = _factory_for(shape, cache)(pe, stage, bindings)
    return True


def bind_system(system, cache: Optional[ArtifactCache] = None):
    """Bind step-functions across all PEs; returns (bound, fallback)."""
    if cache is None:
        cache = get_artifact_cache()
    bound = fallback = 0
    for pe in system.pes:
        for stage in pe.stages:
            if bind_stage(pe, stage, cache):
                bound += 1
            else:
                fallback += 1
    return bound, fallback
