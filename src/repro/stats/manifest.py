"""Run manifests: machine-readable provenance for every experiment.

A manifest is one JSON document capturing everything needed to
reproduce, audit, or diff a run: the (app, input, system, variant)
coordinates, scale and seed, the full ``SystemConfig``, the outcome
(cycles, CPI stack, cache/memory statistics, energy, wall time), and a
schema version so downstream tooling can evolve safely.

``run_experiment(..., manifest_dir=...)`` writes one automatically;
``python -m repro report DIR`` loads and tabulates them. Benchmark
figures produced by ``benchmarks/`` carry manifests next to their
``results/*.txt`` output.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path
from typing import Optional

# v2 adds the optional "profile" key (wait-for blame matrix and
# critical-path attribution, repro.profiling); v1 manifests still load.
MANIFEST_SCHEMA_VERSION = 2

#: Version of the *cache-key* document hashed by :func:`manifest_key`.
#: Bump it whenever the canonical spec shape changes meaning — every
#: previously stored result then misses instead of aliasing.
CACHE_KEY_SCHEMA_VERSION = 1

#: Keys that legitimately differ between two runs of the same
#: (config, seed) point: the wall-clock timestamp and host speed.
#: Everything else must be byte-identical (seed determinism).
VOLATILE_KEYS = ("created", "wall_time_s")


def strip_volatile(manifest: dict) -> dict:
    """Copy ``manifest`` without :data:`VOLATILE_KEYS`, for diffing."""
    return {k: v for k, v in manifest.items() if k not in VOLATILE_KEYS}


def canonical_json(document) -> str:
    """The one canonical text form of a JSON document.

    Sorted keys, two-space indent, trailing newline — the exact bytes
    :func:`write_manifest` produces and the byte-identity contracts
    (seed determinism, the service result cache) compare. ``NaN`` and
    infinities are rejected: they round-trip ambiguously.
    """
    return json.dumps(document, indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def manifest_key(spec: dict, extra: Optional[dict] = None) -> str:
    """Deterministic content-address of one experiment spec.

    Pure function: hashes the sorted-keys compact JSON of ``spec``
    wrapped in a document that carries an explicit key-schema version,
    so the key changes when any spec field changes *and* when the key
    format itself is revised. ``extra`` folds additional provenance
    (e.g. a dataset digest or code version) into the same hash under a
    separate namespace so it can never collide with spec fields.

    The experiment service and the result store key everything through
    here — never hash specs ad hoc.

    Raises ``TypeError`` if ``spec``/``extra`` contain anything that
    does not serialize canonically to JSON (including NaN/inf, whose
    text form is not portable).
    """
    if not isinstance(spec, dict):
        raise TypeError(f"manifest_key takes a spec dict, got "
                        f"{type(spec).__name__}")
    document = {"key_schema": CACHE_KEY_SCHEMA_VERSION, "spec": spec}
    if extra:
        document["extra"] = dict(extra)
    try:
        payload = json.dumps(document, sort_keys=True,
                             separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"spec is not canonically JSON-serializable: {exc}") from None
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_manifest(result, created: Optional[float] = None) -> dict:
    """Build a manifest dict from a harness ``ExperimentResult``.

    Works for both system families: CGRA runs (``SimulationResult``)
    contribute their config, merged counters, and residence statistics;
    OOO runs contribute instruction counts. ``created`` overrides the
    wall-clock timestamp (epoch seconds) for deterministic tests.
    """
    raw = result.raw
    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created": time.strftime(
            "%Y-%m-%dT%H:%M:%S",
            time.gmtime(time.time() if created is None else created)),
        "app": result.app,
        "input": result.input_code,
        "system": result.system,
        "variant": result.variant,
        "scale": result.scale,
        "seed": result.seed,
        "engine": getattr(result, "engine", "fast"),
        "cycles": result.cycles,
        "wall_time_s": result.wall_time_s,
        "correct": result.correct,
        "energy": dict(result.energy),
        "cpi_stack": dict(raw.merged_cpi_stack()),
        "caches": {
            "l1": _aggregate_l1(raw.l1_stats),
            "llc": dict(raw.llc_stats),
            "memory": dict(raw.mem_stats),
        },
    }
    config = getattr(raw, "config", None)
    if dataclasses.is_dataclass(config):
        manifest["config"] = dataclasses.asdict(config)
    counters = getattr(raw, "counters", None)
    if counters is not None:
        manifest["counters"] = dict(counters.items())
        manifest["avg_residence_cycles"] = raw.avg_residence_cycles
        manifest["avg_reconfig_cycles"] = raw.avg_reconfig_cycles
    instructions = getattr(raw, "instructions", None)
    if instructions is not None:
        manifest["instructions"] = instructions
    profile = getattr(result, "profile", None)
    if profile is not None:
        manifest["profile"] = _profile_summary(profile)
    return manifest


def _profile_summary(profile) -> dict:
    """Deterministic, diffable digest of a ``RunProfile``.

    Carries the full blame matrix, its rolled-up waitee totals (what
    ``repro bench-diff`` thresholds), and the critical path's
    per-component attribution — not the raw span timelines, which are
    bulky and derivable by re-running with ``profile=True``.
    """
    path = profile.critical_path()
    return {
        "blame_matrix": profile.blame.as_dict(),
        "blame_rollup": profile.blame.rollup().waitee_totals(),
        "critical_path_attributed": path.attributed(),
        "critical_path_weight": path.total_weight(),
    }


def _aggregate_l1(l1_stats) -> dict:
    hits = sum(s.get("hits", 0) for s in l1_stats)
    misses = sum(s.get("misses", 0) for s in l1_stats)
    total = hits + misses
    return {"hits": hits, "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "n_caches": len(l1_stats)}


def write_manifest(manifest: dict, directory) -> Path:
    """Write ``manifest`` under ``directory`` with a collision-free name."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = "-".join(str(manifest.get(k, "?")) for k in
                    ("app", "input", "system", "variant")) \
           + f"-seed{manifest.get('seed', 0)}"
    path = directory / f"{stem}.json"
    n = 1
    while path.exists():
        n += 1
        path = directory / f"{stem}-{n}.json"
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path) -> dict:
    """Load one manifest, validating its schema version."""
    try:
        manifest = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a valid JSON manifest ({exc})")
    if not isinstance(manifest, dict):
        raise ValueError(f"{path}: manifest must be a JSON object")
    version = manifest.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"{path}: missing/invalid manifest schema_version")
    if version > MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: manifest schema v{version} is newer than supported "
            f"v{MANIFEST_SCHEMA_VERSION}")
    return manifest


def load_manifests(directory) -> list:
    """Load every ``*.json`` manifest under ``directory`` (sorted).

    Merged sweep documents (``kind == "sweep"``, written by
    :func:`repro.harness.sweep.run_sweep`) are skipped — their
    per-point manifests sit alongside them.
    """
    manifests = [load_manifest(path)
                 for path in sorted(Path(directory).glob("*.json"))]
    return [m for m in manifests if m.get("kind") != "sweep"]


def summarize_manifests(manifests) -> tuple:
    """Tabulate manifests for ``repro report``: ``(headers, rows)``.

    Speedup is relative to the slowest run of the same
    ``app/input`` pair, so homogeneous sweeps read as Fig. 13-style
    relative performance.
    """
    headers = ["run", "cycles", "speedup", "wall s", "issued", "queue",
               "reconfig", "idle", "l1 hit", "ok"]
    slowest: dict = {}
    for m in manifests:
        key = (m.get("app"), m.get("input"))
        slowest[key] = max(slowest.get(key, 0.0), m.get("cycles", 0.0))
    rows = []
    for m in manifests:
        stack = m.get("cpi_stack", {})
        total = sum(stack.values()) or 1.0
        base = slowest[(m.get("app"), m.get("input"))]
        label = (f"{m.get('app')}/{m.get('input')}/{m.get('system')}"
                 f"/{m.get('variant')}")
        rows.append([
            label,
            f"{m.get('cycles', 0.0):,.0f}",
            f"{base / m['cycles']:.2f}x" if m.get("cycles") else "-",
            f"{m.get('wall_time_s', 0.0):.2f}",
            f"{stack.get('issued', 0.0) / total:.1%}",
            f"{stack.get('queue', 0.0) / total:.1%}",
            f"{stack.get('reconfig', 0.0) / total:.1%}",
            f"{stack.get('idle', 0.0) / total:.1%}",
            f"{m.get('caches', {}).get('l1', {}).get('hit_rate', 0.0):.1%}",
            "yes" if m.get("correct") else "no",
        ])
    return headers, rows
