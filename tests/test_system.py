"""System-level tests: construction validation, deadlock detection,
timeouts, reconfiguration behavior under configuration knobs."""

import pytest

from repro.config import SystemConfig
from repro.core import (DeadlockError, PEProgram, Program, StageSpec,
                        System, STOP_VALUE)
from repro.core.system import SimulationTimeout
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec


def _passthrough_dfg(name, in_q, out_q):
    b = DFGBuilder(name)
    x = b.deq(in_q)
    b.enq(out_q, x)
    return b.finish()


def _sink_dfg(name, in_q):
    b = DFGBuilder(name)
    x = b.deq(in_q)
    b.add(x, x)
    return b.finish()


def _source_dfg(name, out_q):
    b = DFGBuilder(name)
    counter = b.reg("i")
    one = b.const(1)
    nxt = b.add(counter, one)
    b.set_reg(counter, nxt)
    b.enq(out_q, nxt)
    return b.finish()


def _two_stage_program(n_items=100, sink_consumes=True):
    space = AddressSpace()
    memmap = MemoryMap()
    seen = []

    def producer(ctx):
        for i in range(n_items):
            yield from ctx.enq("sys.q", i)
        yield from ctx.enq("sys.q", STOP_VALUE, is_control=True)

    def consumer(ctx):
        while True:
            token = yield from ctx.deq("sys.q")
            if token.is_control:
                return
            seen.append(token.value)

    def stuck_consumer(ctx):
        yield from ctx.deq("sys.never")  # waits forever

    consumer_fn = consumer if sink_consumes else stuck_consumer
    sink_queue = "sys.q" if sink_consumes else "sys.never"
    pe = PEProgram(
        shard=0,
        queue_specs=[QueueSpec("sys.q"), QueueSpec("sys.never")],
        stage_specs=[
            StageSpec("sys.src", _source_dfg("sys.src", "sys.q"), producer),
            StageSpec("sys.snk", _sink_dfg("sys.snk", sink_queue),
                      consumer_fn),
        ])
    return Program("sys", [pe], space, memmap,
                   result_fn=lambda: list(seen))


class TestConstruction:
    def test_pe_count_mismatch_rejected(self):
        program = _two_stage_program()
        with pytest.raises(ValueError):
            System(SystemConfig(n_pes=4), program, mode="fifer")

    def test_unknown_mode_rejected(self):
        program = _two_stage_program()
        with pytest.raises(ValueError):
            System(SystemConfig(n_pes=1), program, mode="quantum")

    def test_static_requires_one_stage_per_pe(self):
        program = _two_stage_program()
        with pytest.raises(ValueError):
            System(SystemConfig(n_pes=1), program, mode="static")

    def test_unknown_queue_name_rejected(self):
        space = AddressSpace()

        def semantics(ctx):
            yield from ctx.deq("no.such.queue")

        pe = PEProgram(shard=0, stage_specs=[
            StageSpec("s", _sink_dfg("s", "no.such.queue"), semantics)])
        program = Program("bad", [pe], space, MemoryMap())
        with pytest.raises(KeyError):
            System(SystemConfig(n_pes=1), program, mode="fifer")

    def test_config_bitstreams_allocated(self):
        program = _two_stage_program()
        System(SystemConfig(n_pes=1), program, mode="fifer")
        names = {r.name for r in program.address_space.regions()}
        assert "__cfg_sys.src" in names
        assert "__cfg_sys.snk" in names


class TestRunBehavior:
    def test_runs_to_completion(self):
        program = _two_stage_program(n_items=50)
        result = System(SystemConfig(n_pes=1), program, mode="fifer").run()
        assert result.result == list(range(50))

    def test_deadlock_detected_and_reported(self):
        program = _two_stage_program(n_items=5, sink_consumes=False)
        config = SystemConfig(n_pes=1, deadlock_quanta=20)
        with pytest.raises(DeadlockError) as excinfo:
            System(config, program, mode="fifer").run()
        assert "sys.never" in str(excinfo.value)

    def test_timeout_raised(self):
        program = _two_stage_program(n_items=10_000)
        with pytest.raises(SimulationTimeout):
            System(SystemConfig(n_pes=1), program,
                   mode="fifer").run(max_cycles=64)

    def test_result_contains_cache_stats(self):
        program = _two_stage_program()
        result = System(SystemConfig(n_pes=1), program, mode="fifer").run()
        assert len(result.l1_stats) == 1
        assert "hit_rate" in result.l1_stats[0]
        assert result.mem_stats["reads"] >= 0

    def test_zero_cost_reconfig_runs_faster(self):
        base = System(SystemConfig(n_pes=1),
                      _two_stage_program(500), mode="fifer").run()
        free = System(SystemConfig(n_pes=1, zero_cost_reconfig=True),
                      _two_stage_program(500), mode="fifer").run()
        assert free.cycles <= base.cycles
        assert free.counters["reconfig"] == 0

    def test_single_buffered_is_slower_or_equal(self):
        db = System(SystemConfig(n_pes=1, queue_mem_bytes=512),
                    _two_stage_program(800), mode="fifer").run()
        sb = System(SystemConfig(n_pes=1, queue_mem_bytes=512,
                                 double_buffered=False),
                    _two_stage_program(800), mode="fifer").run()
        assert sb.cycles >= db.cycles

    def test_round_robin_policy_runs(self):
        config = SystemConfig(n_pes=1, scheduler_policy="round-robin")
        result = System(config, _two_stage_program(200), mode="fifer").run()
        assert result.result == list(range(200))

    def test_mappings_exposed(self):
        program = _two_stage_program()
        result = System(SystemConfig(n_pes=1), program, mode="fifer").run()
        assert "sys.src" in result.mappings
        assert result.mappings["sys.src"].replication >= 1


class TestCrossPE:
    def test_pipeline_across_two_pes(self):
        space = AddressSpace()
        seen = []

        def producer(ctx):
            for i in range(300):
                yield from ctx.enq("x.q", i * 2)
            yield from ctx.enq("x.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            while True:
                token = yield from ctx.deq("x.q")
                if token.is_control:
                    return
                seen.append(token.value)

        pes = [
            PEProgram(shard=0, stage_specs=[
                StageSpec("x.src", _source_dfg("x.src", "x.q"), producer)]),
            PEProgram(shard=0, queue_specs=[QueueSpec("x.q")],
                      stage_specs=[
                StageSpec("x.snk", _sink_dfg("x.snk", "x.q"), consumer)]),
        ]
        program = Program("x", pes, space, MemoryMap(),
                          result_fn=lambda: list(seen))
        result = System(SystemConfig(n_pes=2), program, mode="static").run()
        assert result.result == [i * 2 for i in range(300)]
        # Producer PE never reconfigures in static mode.
        assert result.counters["reconfig"] == 0
