"""Unit tests for queues, control values, credits, and queue memory."""

import pytest

from repro.queues import (Queue, QueueEmptyError, QueueFullError,
                          QueueMemory, QueueSpec)
from repro.queues.queue_memory import QueueMemoryError


class TestQueueBasics:
    def test_fifo_order(self):
        q = Queue("q", 8)
        for i in range(5):
            q.enq(i)
        assert [q.deq().value for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_in_words(self):
        q = Queue("q", 4, entry_words=2)
        q.enq((1, 2))
        q.enq((3, 4))
        assert not q.can_enq()
        with pytest.raises(QueueFullError):
            q.enq((5, 6))

    def test_control_values_occupy_one_word(self):
        q = Queue("q", 4, entry_words=2)
        q.enq((1, 2))
        q.enq("END", is_control=True)
        q.enq("END2", is_control=True)
        assert q.occupancy_words == 4
        assert not q.can_enq(is_control=True)

    def test_control_bit_travels_with_value(self):
        q = Queue("q", 8)
        q.enq(1)
        q.enq("CTL", is_control=True)
        assert not q.deq().is_control
        token = q.deq()
        assert token.is_control and token.value == "CTL"

    def test_deq_empty_raises(self):
        q = Queue("q", 4)
        with pytest.raises(QueueEmptyError):
            q.deq()
        with pytest.raises(QueueEmptyError):
            q.peek()

    def test_peek_does_not_consume(self):
        q = Queue("q", 4)
        q.enq(7)
        assert q.peek().value == 7
        assert len(q) == 1

    def test_capacity_below_entry_rejected(self):
        with pytest.raises(ValueError):
            Queue("q", 1, entry_words=2)


class TestCreditFlowControl:
    def _queue(self):
        return Queue("q", 8, producers=("a", "b"))

    def test_credits_divided_evenly(self):
        q = self._queue()
        for _ in range(4):
            q.enq(0, producer="a")
        assert not q.can_enq("a")
        assert q.can_enq("b")

    def test_credit_returns_to_original_producer(self):
        q = self._queue()
        for _ in range(4):
            q.enq("A", producer="a")
        q.deq()
        assert q.can_enq("a")
        # b's credits were never consumed.
        for _ in range(4):
            q.enq("B", producer="b")
        assert not q.can_enq("b")

    def test_unknown_producer_rejected(self):
        q = self._queue()
        with pytest.raises(KeyError):
            q.can_enq("stranger")

    def test_single_producer_needs_no_credits(self):
        q = Queue("q", 8, producers=("only",))
        for _ in range(8):
            q.enq(0, producer="only")
        assert not q.can_enq("only")

    def test_insufficient_credit_share_rejected(self):
        with pytest.raises(ValueError):
            Queue("q", 4, entry_words=4, producers=("a", "b"))


class TestQueueMemory:
    def test_even_split(self):
        qmem = QueueMemory(16 * 1024)
        queues = qmem.carve([QueueSpec("a"), QueueSpec("b")])
        assert queues["a"].capacity_words == 1024
        assert queues["b"].capacity_words == 1024

    def test_weighted_split(self):
        qmem = QueueMemory(16 * 1024)
        queues = qmem.carve([QueueSpec("a", weight=3.0), QueueSpec("b")])
        assert queues["a"].capacity_words == 3 * queues["b"].capacity_words

    def test_max_queue_limit(self):
        qmem = QueueMemory(16 * 1024, max_queues=2)
        with pytest.raises(QueueMemoryError):
            qmem.carve([QueueSpec(f"q{i}") for i in range(3)])

    def test_duplicate_names_rejected(self):
        qmem = QueueMemory(16 * 1024)
        with pytest.raises(QueueMemoryError):
            qmem.carve([QueueSpec("a"), QueueSpec("a")])

    def test_floor_guarantees_one_entry_per_producer(self):
        qmem = QueueMemory(256)  # 32 words
        queues = qmem.carve(
            [QueueSpec("wide", entry_words=4,
                       producers=tuple(f"p{i}" for i in range(4))),
             QueueSpec("other")])
        # 4 producers x 4-word entries need at least 16 words.
        assert queues["wide"].capacity_words >= 16

    def test_control_only_flag_propagates(self):
        qmem = QueueMemory(1024)
        queues = qmem.carve([QueueSpec("ctl", control_only=True)])
        assert queues["ctl"].control_only

    def test_words_in_use_tracks_occupancy(self):
        qmem = QueueMemory(1024)
        queues = qmem.carve([QueueSpec("a"), QueueSpec("b", entry_words=2)])
        queues["a"].enq(1)
        queues["b"].enq((1, 2))
        assert qmem.words_in_use == 3
