"""Configuration validation tests."""

import pytest

from repro.config import SystemConfig


class TestSystemConfigValidation:
    def test_defaults_valid(self):
        SystemConfig()  # must not raise

    def test_bad_pe_count(self):
        with pytest.raises(ValueError):
            SystemConfig(n_pes=0)
        with pytest.raises(ValueError):
            SystemConfig(n_pes=-4)

    def test_bad_quantum(self):
        with pytest.raises(ValueError):
            SystemConfig(quantum=0)

    def test_tiny_queue_memory(self):
        with pytest.raises(ValueError):
            SystemConfig(queue_mem_bytes=8)

    def test_bad_drm_parameters(self):
        with pytest.raises(ValueError):
            SystemConfig(drm_issue_width=0)
        with pytest.raises(ValueError):
            SystemConfig(n_drms=-1)

    def test_bad_simd_cap(self):
        with pytest.raises(ValueError):
            SystemConfig(max_simd_replication=0)
        SystemConfig(max_simd_replication=1)     # valid
        SystemConfig(max_simd_replication=None)  # valid

    def test_replace_revalidates(self):
        config = SystemConfig()
        with pytest.raises(ValueError):
            config.replace(n_pes=0)
