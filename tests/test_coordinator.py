"""Unit tests for the control core's IterationCoordinator, against a
fake system (no simulation)."""

import numpy as np
import pytest

from repro.core.stage import STOP_VALUE
from repro.datasets.graphs import power_law_graph
from repro.queues import Queue
from repro.workloads.bfs import BFSWorkload
from repro.workloads.common import IterationCoordinator


class _FakeSystem:
    def __init__(self, workload):
        self.queues = {
            workload.q("iter", shard): Queue(f"iter{shard}", 64)
            for shard in range(workload.n_shards)
        }

    def resolve_queue(self, name):
        return self.queues[name]


@pytest.fixture
def setup():
    graph = power_law_graph(60, 4.0, seed=60)
    workload = BFSWorkload(graph, n_shards=4, source=0)
    barrier = Queue("bfs.barrier", 16)
    coordinator = IterationCoordinator(workload, barrier)
    system = _FakeSystem(workload)
    return workload, barrier, coordinator, system


class TestIterationCoordinator:
    def test_first_poll_kicks_off(self, setup):
        workload, barrier, coordinator, system = setup
        coordinator.poll(system)
        # Every shard got exactly one iteration directive.
        for shard in range(4):
            queue = system.resolve_queue(workload.q("iter", shard))
            assert len(queue) == 1
            token = queue.deq()
            assert token.is_control
            kind, count, half = token.value
            assert kind == "iter"
        assert coordinator.iteration == 1

    def test_barrier_waits_for_all_shards(self, setup):
        workload, barrier, coordinator, system = setup
        coordinator.poll(system)
        for queue in system.queues.values():
            queue.deq()
        # Three of four shards arrive: no dispatch yet.
        for shard in range(3):
            barrier.enq(("done", shard), is_control=True)
        coordinator.poll(system)
        assert all(queue.is_empty() for queue in system.queues.values())
        # The last shard arrives: the next iteration (or STOP) dispatches.
        barrier.enq(("done", 3), is_control=True)
        coordinator.poll(system)
        assert all(len(queue) == 1 for queue in system.queues.values())

    def test_duplicate_arrivals_do_not_double_dispatch(self, setup):
        workload, barrier, coordinator, system = setup
        coordinator.poll(system)
        for queue in system.queues.values():
            queue.deq()
        for _ in range(3):  # shard 0 reports three times
            barrier.enq(("done", 0), is_control=True)
        coordinator.poll(system)
        assert all(queue.is_empty() for queue in system.queues.values())

    def test_stop_dispatched_when_no_work(self, setup):
        workload, barrier, coordinator, system = setup
        coordinator.poll(system)  # consumes the initial fringe
        for queue in system.queues.values():
            queue.deq()
        # No S3 appended anything: the barrier should broadcast STOP.
        for shard in range(4):
            barrier.enq(("done", shard), is_control=True)
        coordinator.poll(system)
        for queue in system.queues.values():
            token = queue.deq()
            assert token.is_control and token.value == STOP_VALUE

    def test_dispatch_reflects_touched_counts(self, setup):
        workload, barrier, coordinator, system = setup
        coordinator.poll(system)
        for queue in system.queues.values():
            queue.deq()
        workload._append_touched(2, 34)
        workload._append_touched(2, 38)
        for shard in range(4):
            barrier.enq(("done", shard), is_control=True)
        coordinator.poll(system)
        counts = {}
        for shard in range(4):
            token = system.resolve_queue(workload.q("iter", shard)).deq()
            counts[shard] = token.value[1]
        assert counts[2] == 2
        assert counts[0] == counts[1] == counts[3] == 0
