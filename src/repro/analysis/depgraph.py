"""Whole-kernel dependence graph for the auto-decoupling analyzer.

The front-end's split analysis (:mod:`repro.frontend.split`) trusts the
author: it cuts the kernel exactly at the ``load()`` markers. This
module builds the structure a *discopop-style* analyzer needs to stop
trusting them: the complete dependence graph of one kernel body —
every data, control, memory-carried, and loop-carried dependence —
with each memory access classified by its index expression:

* **data** — SSA operand edges (expression arguments, statement
  inputs, the edge loop's CSR bounds);
* **control** — ``when()`` predicates guarding statements;
* **memory** — carried array dependences: a ``store`` to ref *R*
  reaches every access of *R* (RAW into the loads, WAW between
  stores). These cross iteration/lane boundaries, so they are marked
  ``carried``;
* **loop** — the iteration-level cycle: ``push`` feeds the next
  iteration's ``vertex()`` fringe.

Each access record carries an ``index_class`` — ``affine`` (a linear
function of the induction variables: ``offsets[v]``, ``weights[e]``),
``indirect`` (the index is itself a loaded value: ``dist[ngh]``), or
``nonaffine`` — and a ``depth``: 1 + the deepest access its index
transitively depends on, which is exactly the pipeline cut depth the
paper's split rule assigns (:func:`repro.frontend.lint.compute_levels`
computes the same quantity for marked loads; the fact is re-derived
here from the dependence graph alone so the analyzer works on kernels
with *no* markings at all).

:func:`clone_kernel` and :func:`strip_annotations` rebuild a kernel's
SSA graph with different split markings — the mechanism by which the
analyzer's decisions (:mod:`repro.analysis.autosplit`) are applied and
proven bit-identical to hand annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

#: Dependence kinds, in the order reports list them.
DEP_KINDS = ("data", "control", "memory", "loop")

#: Access index classes.
INDEX_CLASSES = ("affine", "indirect", "nonaffine")


@dataclass(frozen=True)
class DepEdge:
    """One dependence: ``src`` must produce before ``dst`` consumes."""

    src: str
    dst: str
    dep: str            # one of DEP_KINDS
    carried: bool       # crosses an iteration or lane boundary
    detail: str

    def as_dict(self) -> dict:
        return {"src": self.src, "dst": self.dst, "dep": self.dep,
                "carried": self.carried, "detail": self.detail}


@dataclass(frozen=True)
class Access:
    """One classified memory access (a load value or a store statement)."""

    node: str           # "v<vid>" or "s<sid>"
    ref: str
    mode: str           # "load" | "store"
    index_class: str    # one of INDEX_CLASSES
    depth: int          # 1 + deepest access feeding the index
    owner: bool         # author's owner marking (False when stripped)
    marked: bool        # author's load() marking (False for access())
    in_edge_loop: bool
    mutable_ref: bool

    def as_dict(self) -> dict:
        return {"node": self.node, "ref": self.ref, "mode": self.mode,
                "index_class": self.index_class, "depth": self.depth,
                "owner": self.owner, "marked": self.marked,
                "in_edge_loop": self.in_edge_loop,
                "mutable_ref": self.mutable_ref}


def _index_loads(expr) -> Iterable:
    """The loads an index expression *directly* depends on.

    One hop only: a load terminates the walk (its own index belongs to
    the previous link of the chain). The edge induction variable
    depends on its CSR bounds, so chains thread through ``edges()``.
    """
    if expr.op == "load":
        yield expr
        return
    if expr.op == "edge":
        for bound in expr.attr:
            yield from _index_loads(bound)
        return
    for arg in expr.args:
        yield from _index_loads(arg)


def _is_const(expr) -> bool:
    if expr.op == "const":
        return True
    if expr.op in ("add", "sub", "mul"):
        return all(_is_const(a) for a in expr.args)
    return False


def _is_affine(expr) -> bool:
    """Linear in the induction variables (vertex/edge) and constants."""
    op = expr.op
    if op in ("vertex", "edge", "const", "epoch"):
        return True
    if op == "load":
        return False
    if op in ("add", "sub"):
        return all(_is_affine(a) for a in expr.args)
    if op == "mul":
        return (all(_is_affine(a) for a in expr.args)
                and any(_is_const(a) for a in expr.args))
    return False


def _direct_loads(expr) -> Iterable:
    """Loads in the index expression itself (induction vars are leaves).

    Unlike :func:`_index_loads` this does NOT thread through the edge
    variable's CSR bounds: ``neighbors[e]`` streams an affine range even
    though the range's *bounds* were loaded. Used for classification
    only; depth and chain walks use :func:`_index_loads`.
    """
    if expr.op == "load":
        yield expr
        return
    if expr.op == "edge":
        return
    for arg in expr.args:
        yield from _direct_loads(arg)


def classify_index(expr) -> str:
    """``affine`` / ``indirect`` / ``nonaffine`` for one index expr."""
    if any(True for _ in _direct_loads(expr)):
        return "indirect"
    return "affine" if _is_affine(expr) else "nonaffine"


class DependenceGraph:
    """The whole-kernel dependence graph of one :class:`GraphKernel`.

    Built by :func:`build_dependence_graph`. Nodes are keyed ``v<vid>``
    (SSA values) and ``s<sid>`` (statements); edges are
    :class:`DepEdge` records and accesses :class:`Access` records.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.kernel_name = kernel.name
        self.nodes: dict = {}
        self.edges: list = []
        self.accesses: list = []
        self._depth: dict = {}
        self._build()

    # -- construction ---------------------------------------------------

    def _value_key(self, value) -> str:
        return f"v{value.vid}"

    def _stmt_key(self, stmt) -> str:
        return f"s{stmt.sid}"

    def _add_edge(self, src: str, dst: str, dep: str, carried: bool,
                  detail: str) -> None:
        self.edges.append(DepEdge(src, dst, dep, carried, detail))

    def _load_depth(self, value) -> int:
        got = self._depth.get(value.vid)
        if got is not None:
            return got
        depth = 1 + max((self._load_depth(l)
                         for l in _index_loads(value.args[0])), default=0)
        self._depth[value.vid] = depth
        return depth

    def _expr_depth(self, expr) -> int:
        """Deepest access inside ``expr`` (0 when none)."""
        if expr.op == "load":
            return self._load_depth(expr)
        if expr.op == "edge":
            return max((self._expr_depth(b) for b in expr.attr), default=0)
        return max((self._expr_depth(a) for a in expr.args), default=0)

    def _build(self) -> None:
        kernel = self.kernel
        for value in kernel.values:
            key = self._value_key(value)
            self.nodes[key] = {"label": value.label, "op": value.op,
                               "in_edge_loop": value.in_edge_loop}
            for arg in value.args:
                self._add_edge(self._value_key(arg), key, "data", False,
                               "operand")
            if value.op == "edge":
                for bound in value.attr:
                    self._add_edge(self._value_key(bound), key, "data",
                                   False, "loop bound")
            if value.op == "load":
                self.accesses.append(Access(
                    node=key, ref=value.attr.ref.name, mode="load",
                    index_class=classify_index(value.args[0]),
                    depth=self._load_depth(value),
                    owner=bool(value.attr.owner),
                    marked=bool(value.attr.marked),
                    in_edge_loop=value.in_edge_loop,
                    mutable_ref=bool(value.attr.ref.mutable)))

        for stmt in kernel.statements:
            key = self._stmt_key(stmt)
            self.nodes[key] = {"label": stmt.label, "op": stmt.kind,
                               "in_edge_loop": stmt.in_edge_loop}
            if stmt.index is not None:
                self._add_edge(self._value_key(stmt.index), key, "data",
                               False, "index")
            if stmt.value is not None:
                self._add_edge(self._value_key(stmt.value), key, "data",
                               False, "value")
            for pred in stmt.preds:
                self._add_edge(self._value_key(pred), key, "control",
                               False, "when() predicate")
            if stmt.kind == "store":
                inputs = [e for e in (stmt.index, stmt.value) if e is not None]
                depth = max((self._expr_depth(e)
                             for e in inputs + list(stmt.preds)), default=0)
                self.accesses.append(Access(
                    node=key, ref=stmt.ref.name, mode="store",
                    index_class=classify_index(stmt.index),
                    depth=depth,
                    owner=False, marked=True,
                    in_edge_loop=stmt.in_edge_loop,
                    mutable_ref=bool(stmt.ref.mutable)))
            elif stmt.kind == "push" and kernel._vertex is not None:
                # The pushed vertex seeds the next iteration's fringe:
                # the kernel-level loop-carried dependence.
                self._add_edge(key, self._value_key(kernel._vertex),
                               "loop", True, "next-iteration fringe")

        # Memory-carried dependences: a store to R reaches every access
        # of R. Within one token's straight-line body the stores execute
        # last (the update stage), so these edges always cross an
        # iteration or lane boundary: carried.
        stores = [s for s in kernel.statements if s.kind == "store"]
        for stmt in stores:
            skey = self._stmt_key(stmt)
            for value in kernel.values:
                if value.op == "load" and value.attr.ref is stmt.ref:
                    self._add_edge(skey, self._value_key(value), "memory",
                                   True, f"RAW on {stmt.ref.name!r}")
            for other in stores:
                if other is not stmt and other.ref is stmt.ref:
                    self._add_edge(skey, self._stmt_key(other), "memory",
                                   True, f"WAW on {stmt.ref.name!r}")

    # -- queries --------------------------------------------------------

    def loads(self) -> list:
        return [a for a in self.accesses if a.mode == "load"]

    def stores(self) -> list:
        return [a for a in self.accesses if a.mode == "store"]

    def access_for(self, node: str) -> Optional[Access]:
        for access in self.accesses:
            if access.node == node:
                return access
        return None

    def edges_of(self, dep: str) -> list:
        return [e for e in self.edges if e.dep == dep]

    def carried_edges(self) -> list:
        return [e for e in self.edges if e.carried]

    def value(self, node: str):
        """The kernel SSA value behind a ``v<vid>`` node key."""
        if not node.startswith("v"):
            raise KeyError(node)
        return self.kernel.values[int(node[1:])]

    def statement(self, node: str):
        if not node.startswith("s"):
            raise KeyError(node)
        return self.kernel.statements[int(node[1:])]

    def indirect_chains(self) -> list:
        """Maximal load→load chains threaded through index expressions.

        Each returned chain is a list of ``v<vid>`` node keys ordered
        producer-first: ``offsets[v] → neighbors[e] → dist[ngh]`` is
        the canonical graph-kernel chain. Chains are the analyzer's
        primary pipelining signal — every link is a latency boundary a
        decoupled stage can hide.
        """
        values = self.kernel.values
        load_values = [v for v in values if v.op == "load"]
        succs: dict = {v.vid: [] for v in load_values}
        has_pred: dict = {v.vid: False for v in load_values}
        for v in load_values:
            for feeder in _index_loads(v.args[0]):
                succs[feeder.vid].append(v)
                has_pred[v.vid] = True
        chains: list = []

        def walk(v, prefix):
            prefix = prefix + [self._value_key(v)]
            nexts = succs[v.vid]
            if not nexts:
                if len(prefix) > 1:
                    chains.append(prefix)
                return
            for nxt in nexts:
                walk(nxt, prefix)

        for v in load_values:
            if not has_pred[v.vid]:
                walk(v, [])
        return chains

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel_name,
            "nodes": {key: dict(info) for key, info in self.nodes.items()},
            "edges": [e.as_dict() for e in self.edges],
            "accesses": [a.as_dict() for a in self.accesses],
            "chains": self.indirect_chains(),
        }


def build_dependence_graph(kernel) -> DependenceGraph:
    """Construct the whole-kernel dependence graph of ``kernel``."""
    return DependenceGraph(kernel)


# -- kernel rebuilding -----------------------------------------------------

def clone_kernel(kernel, owner_by_vid: Optional[dict] = None,
                 marked_by_vid: Optional[dict] = None):
    """Rebuild ``kernel`` with (possibly different) split markings.

    The SSA value list, statement list, declarations, and init
    closures are replayed in definition order, so the clone's
    :func:`repro.cache.kernel_fingerprint` is *equal* to the
    original's whenever the markings agree — the property the
    auto-decoupling bit-identity proof rests on. ``owner_by_vid`` /
    ``marked_by_vid`` override the owner/marked flag per load vid;
    unlisted loads keep their original flags.
    """
    from repro.frontend.kernel import (GraphKernel, LoadInfo, Ref,
                                       Statement, Value)
    owner_by_vid = owner_by_vid or {}
    marked_by_vid = marked_by_vid or {}

    clone = GraphKernel(kernel.name, kernel.doc)
    clone.params = dict(kernel.params)
    clone.fringe = tuple(kernel.fringe)
    ref_map = {id(kernel.offsets): clone.offsets,
               id(kernel.neighbors): clone.neighbors}
    for ref in kernel.refs:
        twin = Ref(ref.name, ref.size, ref.mutable, ref.init, ref.output)
        clone.refs.append(twin)
        ref_map[id(ref)] = twin

    vmap: dict = {}
    for value in kernel.values:
        clone._in_edges = value.in_edge_loop
        args = tuple(vmap[a.vid] for a in value.args)
        attr = value.attr
        if value.op == "load":
            attr = LoadInfo(
                ref_map[id(value.attr.ref)],
                owner=bool(owner_by_vid.get(value.vid, value.attr.owner)),
                marked=bool(marked_by_vid.get(value.vid,
                                              value.attr.marked)))
        elif value.op == "edge":
            attr = tuple(vmap[b.vid] for b in value.attr)
        twin = Value(clone, value.op, args, attr)
        vmap[value.vid] = twin
        if value.op == "vertex":
            clone._vertex = twin
        elif value.op == "epoch":
            clone._epoch = twin
        elif value.op == "edge":
            clone._edge_var = twin
            clone._edges_defined = True

    for stmt in kernel.statements:
        clone._in_edges = stmt.in_edge_loop
        clone._preds = [vmap[p.vid] for p in stmt.preds]
        Statement(
            clone, stmt.kind,
            ref=ref_map[id(stmt.ref)] if stmt.ref is not None else None,
            index=vmap[stmt.index.vid] if stmt.index is not None else None,
            value=vmap[stmt.value.vid] if stmt.value is not None else None,
            dedup=stmt.dedup)
    clone._in_edges = False
    clone._preds = []
    return clone


def strip_annotations(kernel):
    """A copy of ``kernel`` with every split marking removed.

    Every ``load()`` becomes a neutral ``access()`` (``marked=False``,
    ``owner=False``): the input the analyzer must solve from the
    dependence graph alone. Used to prove inference is
    annotation-free — ``infer_split(strip_annotations(k))`` must reach
    the same decision as ``infer_split(k)``.
    """
    loads = [v for v in kernel.values if v.op == "load"]
    return clone_kernel(
        kernel,
        owner_by_vid={v.vid: False for v in loads},
        marked_by_vid={v.vid: False for v in loads})
