"""A bulk-loaded B+tree index (the Silo benchmark's data structure).

Silo (paper Sec. 7.2) performs lookups against B+tree indexes: internal
nodes are traversed (each traversal is another dependent dereference —
the cycle in Fig. 12(b)) until a leaf is reached and searched for the
key. This module provides a functional B+tree plus the node-address
arithmetic the timing simulation needs.

Nodes are numbered globally, root first, then level by level; each node
occupies a fixed byte span in the simulated address space so a node id
maps to an address.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np


@dataclass
class _Node:
    node_id: int
    is_leaf: bool
    keys: list
    # Leaf: values aligned with keys. Internal: child node ids, one more
    # than keys (keys[i] is the smallest key reachable via children[i+1]).
    values: list = field(default_factory=list)
    children: list = field(default_factory=list)


class BPlusTree:
    """Immutable B+tree bulk-loaded from sorted unique keys."""

    def __init__(self, keys, values, fanout: int = 8):
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if len(keys) == 0:
            raise ValueError("cannot build an empty B+tree")
        if np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be strictly increasing")
        self.fanout = fanout
        self.n_keys = len(keys)
        # Bytes one node occupies in the simulated address space:
        # `fanout` keys + `fanout+1` pointers/values, line-aligned.
        self.node_bytes = -(-(fanout * 8 + (fanout + 1) * 8) // 64) * 64

        # Build leaves, then parent levels bottom-up.
        levels: list[list[_Node]] = []
        leaves = []
        for lo in range(0, len(keys), fanout):
            hi = min(lo + fanout, len(keys))
            leaves.append(_Node(-1, True, list(keys[lo:hi]),
                                values=list(values[lo:hi])))
        levels.append(leaves)
        def subtree_min(node: "_Node"):
            while not node.is_leaf:
                node = node.children[0]
            return node.keys[0]

        while len(levels[-1]) > 1:
            children = levels[-1]
            parents = []
            for lo in range(0, len(children), fanout):
                group = children[lo:lo + fanout]
                seps = [subtree_min(node) for node in group[1:]]
                parents.append(_Node(-1, False, seps, children=group))
            levels.append(parents)
        levels.reverse()  # root level first

        # Assign global ids root-first and flatten.
        self.nodes: list[_Node] = []
        for level in levels:
            for node in level:
                node.node_id = len(self.nodes)
                self.nodes.append(node)
        for node in self.nodes:
            if not node.is_leaf:
                node.children = [child.node_id for child in node.children]
        self.root_id = levels[0][0].node_id
        self.depth = len(levels)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_bytes(self) -> int:
        return self.n_nodes * self.node_bytes

    def node_offset(self, node_id: int) -> int:
        """Byte offset of ``node_id`` within the tree's address region."""
        return node_id * self.node_bytes

    def step(self, node_id: int, key: int) -> tuple[int, bool]:
        """One traversal step: returns ``(child_id, child_is_leaf)``."""
        node = self.nodes[node_id]
        if node.is_leaf:
            raise ValueError(f"node {node_id} is a leaf; cannot step")
        child_id = node.children[bisect.bisect_right(node.keys, key)]
        return child_id, self.nodes[child_id].is_leaf

    def leaf_lookup(self, node_id: int, key: int):
        """Search a leaf; returns the value or ``None``."""
        node = self.nodes[node_id]
        if not node.is_leaf:
            raise ValueError(f"node {node_id} is not a leaf")
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        return None

    def lookup(self, key: int):
        """Full root-to-leaf lookup; returns the value or ``None``."""
        node_id = self.root_id
        if self.depth == 1:
            return self.leaf_lookup(node_id, key)
        is_leaf = False
        while not is_leaf:
            node_id, is_leaf = self.step(node_id, key)
        return self.leaf_lookup(node_id, key)

    def lookup_path(self, key: int) -> list[int]:
        """Node ids visited by ``lookup`` (root to leaf, inclusive)."""
        path = [self.root_id]
        node_id = self.root_id
        while not self.nodes[node_id].is_leaf:
            node_id, _ = self.step(node_id, key)
            path.append(node_id)
        return path
