"""Annotated-kernel definitions for the front-end.

``bfs`` and ``cc`` are ports of the hand-written workloads — each is a
dozen lines of kernel description, and the generated pipelines are
bit-identical to :mod:`repro.workloads.bfs`/:mod:`repro.workloads.cc`
(asserted by the frontend differential suite). ``sssp`` exists only
here: single-source shortest paths with per-edge weights exercises the
edge-state path (two-word edge fetches, a payload transform at S2) that
no hand-written pipeline uses.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graphs import CSRGraph
from repro.frontend.kernel import GraphKernel
from repro.frontend.lower import CompiledPipeline, compile_kernel

#: Unreachable-distance sentinel for SSSP. Far above any finite path
#: length (max weight 16 x edges) yet small enough that int64 sums of
#: finite distances and weights cannot overflow.
SSSP_INF = 1 << 60


def sssp_edge_weights(graph: CSRGraph) -> np.ndarray:
    """Deterministic per-edge weights in [1, 16] (Knuth-hash of the id)."""
    e = np.arange(max(1, graph.n_edges), dtype=np.int64)
    return (e * 2654435761 % 1000003) % 15 + 1


def bfs_kernel() -> GraphKernel:
    """Breadth-first search from a source vertex."""
    k = GraphKernel("bfs", doc="BFS: distance in hops from a source")
    k.param("source", 0)

    def init_distances(graph, params):
        distances = np.full(graph.n_vertices, -1, dtype=np.int64)
        distances[int(params["source"])] = 0
        return distances

    dist = k.state("distances", init=init_distances, output=True)
    k.start_from("source", "source")
    v = k.vertex()
    start = k.load(k.offsets, v)
    end = k.load(k.offsets, v + 1)
    with k.edges(start, end) as e:
        ngh = k.load(k.neighbors, e)
        dv = k.load(dist, ngh, owner=True)
        with k.when(dv < 0):
            k.store(dist, ngh, k.epoch())
            k.push(ngh)
    return k


def cc_kernel() -> GraphKernel:
    """Connected components via minimum-label propagation."""
    k = GraphKernel("cc", doc="CC: propagate minimum labels to convergence")

    def init_labels(graph, params):
        return np.arange(graph.n_vertices, dtype=np.int64)

    labels = k.state("labels", init=init_labels, output=True)
    k.start_from("all")
    v = k.vertex()
    label = k.load(labels, v)
    start = k.load(k.offsets, v)
    end = k.load(k.offsets, v + 1)
    with k.edges(start, end) as e:
        ngh = k.load(k.neighbors, e)
        cur = k.load(labels, ngh, owner=True)
        with k.when(label < cur):
            k.store(labels, ngh, label)
            k.push(ngh, dedup=True)
    return k


def sssp_kernel() -> GraphKernel:
    """Single-source shortest paths (label-correcting relaxation).

    Each relaxation uses the source distance read at enumerate time; a
    stale (too-high) read only delays convergence — the update stage
    re-checks against the authoritative distance, and any vertex whose
    distance shrinks is re-pushed — so the pipeline converges to the
    same fixed point as the serial reference.
    """
    k = GraphKernel("sssp", doc="SSSP: weighted shortest path lengths")
    k.param("source", 0)

    def init_dist(graph, params):
        dist = np.full(graph.n_vertices, SSSP_INF, dtype=np.int64)
        dist[int(params["source"])] = 0
        return dist

    dist = k.state("dist", init=init_dist, output=True)
    weights = k.state("weights", size="edges", mutable=False,
                      init=lambda graph, params: sssp_edge_weights(graph))
    k.start_from("source", "source")
    v = k.vertex()
    dv = k.load(dist, v)
    start = k.load(k.offsets, v)
    end = k.load(k.offsets, v + 1)
    with k.edges(start, end) as e:
        ngh = k.load(k.neighbors, e)
        w = k.load(weights, e)
        cand = dv + w
        dn = k.load(dist, ngh, owner=True)
        with k.when(cand < dn):
            k.store(dist, ngh, cand)
            k.push(ngh, dedup=True)
    return k


#: Kernel factories by name, in presentation order.
FRONTEND_KERNELS = {
    "bfs": bfs_kernel,
    "cc": cc_kernel,
    "sssp": sssp_kernel,
}

_COMPILED: dict = {}


def get_frontend(name: str) -> CompiledPipeline:
    """Compile (once) and return the named kernel's pipeline."""
    pipeline = _COMPILED.get(name)
    if pipeline is None:
        try:
            factory = FRONTEND_KERNELS[name]
        except KeyError:
            raise KeyError(
                f"no frontend kernel {name!r} (have: "
                f"{', '.join(sorted(FRONTEND_KERNELS))})") from None
        pipeline = compile_kernel(factory())
        _COMPILED[name] = pipeline
    return pipeline


def describe_cached(name: str) -> dict:
    """The compile description of a registered kernel, content-cached.

    :meth:`CompiledPipeline.describe` materializes every stage DFG to
    produce the stage list, queue graph, and per-stage assembly; the
    result depends only on the kernel, so it is cached under the
    kernel's fingerprint — as JSON on disk when a cache root is
    configured, making ``repro compile`` of an unchanged kernel a hash
    plus a file read across processes.
    """
    from repro.cache import get_artifact_cache, kernel_fingerprint
    cache = get_artifact_cache()
    key = kernel_fingerprint(FRONTEND_KERNELS[name]())
    description = cache.get("describe", key)
    if description is None:
        description = get_frontend(name).describe()
        cache.put("describe", key, description)
    return description
